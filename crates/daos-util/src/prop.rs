//! A deterministic, seeded property-test harness — the in-tree
//! replacement for `proptest`.
//!
//! Differences from proptest are deliberate simplifications:
//!
//! * **Fixed case count**, chosen per suite, run from a **deterministic
//!   base seed** (`0xDA05` ^ a hash of the test name), so a failure on
//!   one machine is a failure on every machine.
//! * The failing **case seed is printed** in the panic message; re-run
//!   just that case by setting `DAOS_PROP_SEED=<seed>`.
//! * **Simple halving shrink**: after a failure the harness repeatedly
//!   asks the strategy for a halved input (integers halve toward the
//!   range floor, collections halve their length, tuples shrink one
//!   component at a time) and keeps the smallest input that still fails.
//!   There is no backtracking shrink tree.

use crate::rng::SmallRng;

/// A failed test case (assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from any displayable message.
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A property body's outcome.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator with an optional one-step shrinker.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Propose a strictly "smaller" value, or `None` when minimal.
    fn shrink(&self, _v: &Self::Value) -> Option<Self::Value> {
        None
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, v: &Self::Value) -> Option<Self::Value> {
        (**self).shrink(v)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, v: &Self::Value) -> Option<Self::Value> {
        (**self).shrink(v)
    }
}

// ---------------------------------------------------------------- ranges

macro_rules! int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Option<$t> {
                let lo = self.start;
                if *v > lo {
                    Some(lo + (*v - lo) / 2)
                } else {
                    None
                }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Option<$t> {
                let lo = *self.start();
                if *v > lo {
                    Some(lo + (*v - lo) / 2)
                } else {
                    None
                }
            }
        }
    )+};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
    fn shrink(&self, v: &f64) -> Option<f64> {
        let lo = self.start;
        let mid = lo + (*v - lo) / 2.0;
        if (*v - lo).abs() > 1e-9 && mid != *v {
            Some(mid)
        } else {
            None
        }
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
    fn shrink(&self, v: &f64) -> Option<f64> {
        let lo = *self.start();
        let mid = lo + (*v - lo) / 2.0;
        if (*v - lo).abs() > 1e-9 && mid != *v {
            Some(mid)
        } else {
            None
        }
    }
}

// ------------------------------------------------------------ primitives

/// Uniform `bool` strategy (shrinks `true` → `false`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.random()
    }
    fn shrink(&self, v: &bool) -> Option<bool> {
        if *v {
            Some(false)
        } else {
            None
        }
    }
}

/// Uniform `bool` strategy value.
pub fn any_bool() -> AnyBool {
    AnyBool
}

/// A constant strategy: always `value`, never shrinks.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Uniformly pick one of the given values.
pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select(options)
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T>(Vec<T>);

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        self.0[rng.sample_index(self.0.len())].clone()
    }
}

// ----------------------------------------------------------- combinators

/// Map a strategy's output through a function. Mapped values cannot be
/// shrunk (the mapping is not invertible).
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
    T: Clone + std::fmt::Debug,
{
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Extension adapter: `strategy.prop_map(f)`.
pub trait StrategyExt: Strategy + Sized {
    /// Map generated values through `f`.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> T,
        T: Clone + std::fmt::Debug,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (needed by [`one_of!`]).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// Uniformly delegate to one of several boxed strategies of the same
/// value type. Use via the [`one_of!`] macro.
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T: Clone + std::fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        self.0[rng.sample_index(self.0.len())].generate(rng)
    }
}

/// `one_of![a, b, c]` — uniformly pick a branch, then draw from it (the
/// replacement for `prop_oneof!`).
#[macro_export]
macro_rules! one_of {
    ($($s:expr),+ $(,)?) => {
        $crate::prop::OneOf(vec![$($crate::prop::StrategyExt::boxed($s)),+])
    };
}

// ----------------------------------------------------------- collections

/// Length specification for collection strategies: a fixed `usize` or a
/// `usize` range.
pub trait IntoLenStrategy {
    /// The concrete length strategy.
    type Strat: Strategy<Value = usize>;
    /// Convert into a length strategy.
    fn into_len_strategy(self) -> Self::Strat;
}

impl IntoLenStrategy for usize {
    type Strat = Just<usize>;
    fn into_len_strategy(self) -> Just<usize> {
        Just(self)
    }
}

impl IntoLenStrategy for core::ops::Range<usize> {
    type Strat = core::ops::Range<usize>;
    fn into_len_strategy(self) -> Self {
        self
    }
}

impl IntoLenStrategy for core::ops::RangeInclusive<usize> {
    type Strat = core::ops::RangeInclusive<usize>;
    fn into_len_strategy(self) -> Self {
        self
    }
}

/// `Vec<T>` strategy: a length drawn from `len`, elements from `elem`.
/// Shrinks by halving the length toward the minimum, then by shrinking
/// the first shrinkable element.
pub fn vec_of<S: Strategy, L: IntoLenStrategy>(elem: S, len: L) -> VecOf<S, L::Strat> {
    VecOf { elem, len: len.into_len_strategy() }
}

/// Strategy returned by [`vec_of`].
pub struct VecOf<S, L> {
    elem: S,
    len: L,
}

impl<S: Strategy, L: Strategy<Value = usize>> Strategy for VecOf<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Option<Vec<S::Value>> {
        if let Some(half) = self.len.shrink(&v.len()) {
            return Some(v[..half].to_vec());
        }
        for (i, x) in v.iter().enumerate() {
            if let Some(smaller) = self.elem.shrink(x) {
                let mut out = v.clone();
                out[i] = smaller;
                return Some(out);
            }
        }
        None
    }
}

/// `BTreeSet<T>` strategy: *up to* the drawn count of distinct elements
/// (duplicates collapse, as with proptest's `btree_set`).
pub fn btree_set_of<S, L>(elem: S, len: L) -> BTreeSetOf<S, L::Strat>
where
    S: Strategy,
    S::Value: Ord,
    L: IntoLenStrategy,
{
    BTreeSetOf { elem, len: len.into_len_strategy() }
}

/// Strategy returned by [`btree_set_of`].
pub struct BTreeSetOf<S, L> {
    elem: S,
    len: L,
}

impl<S, L> Strategy for BTreeSetOf<S, L>
where
    S: Strategy,
    S::Value: Ord,
    L: Strategy<Value = usize>,
{
    type Value = std::collections::BTreeSet<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Self::Value) -> Option<Self::Value> {
        if v.len() > 1 {
            Some(v.iter().take(v.len() / 2).cloned().collect())
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($(($($S:ident / $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Option<Self::Value> {
                // Shrink the first component that still can.
                $(
                    if let Some(smaller) = self.$idx.shrink(&v.$idx) {
                        let mut out = v.clone();
                        out.$idx = smaller;
                        return Some(out);
                    }
                )+
                None
            }
        }
    )+};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

// ---------------------------------------------------------------- runner

/// Maximum accepted shrink steps after a failure.
const MAX_SHRINK_STEPS: usize = 256;

fn name_hash(name: &str) -> u64 {
    // FNV-1a, good enough to decorrelate per-test streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `cases` deterministic cases of the property `f` over inputs drawn
/// from `strat`. Panics (with the case seed and the minimal failing
/// input found) on the first failure.
///
/// Set `DAOS_PROP_SEED=<seed>` to re-run exactly one failing case.
pub fn run_cases<S: Strategy>(
    name: &str,
    cases: u32,
    strat: S,
    f: impl Fn(S::Value) -> TestCaseResult,
) {
    let replay: Option<u64> = std::env::var("DAOS_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok());
    let base = 0xDA05_u64 ^ name_hash(name);
    let seeds: Vec<u64> = match replay {
        Some(seed) => vec![seed],
        None => (0..cases as u64).map(|i| base.wrapping_add(i)).collect(),
    };
    for seed in seeds {
        let mut rng = SmallRng::seed_from_u64(seed);
        let input = strat.generate(&mut rng);
        if let Err(err) = f(input.clone()) {
            let (min_input, min_err, steps) = shrink_failure(&strat, &f, input, err);
            // lint: allow(panic, the property harness reports failures by panicking, like #[test])
            panic!(
                "property '{name}' failed (seed {seed}, re-run with \
                 DAOS_PROP_SEED={seed}): {min_err}\n  minimal input \
                 (after {steps} shrink steps): {min_input:?}"
            );
        }
    }
}

fn shrink_failure<S: Strategy>(
    strat: &S,
    f: &impl Fn(S::Value) -> TestCaseResult,
    mut failing: S::Value,
    mut err: TestCaseError,
) -> (S::Value, TestCaseError, usize) {
    let mut steps = 0;
    while steps < MAX_SHRINK_STEPS {
        let Some(candidate) = strat.shrink(&failing) else {
            break;
        };
        match f(candidate.clone()) {
            // Candidate passes: the halving walk is over (no backtracking).
            Ok(()) => break,
            Err(e) => {
                failing = candidate;
                err = e;
                steps += 1;
            }
        }
    }
    (failing, err, steps)
}

/// Declare deterministic property tests (the `proptest!` replacement):
///
/// ```ignore
/// daos_util::proptest! {
///     cases = 64;
///
///     fn sum_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each binding draws from a [`Strategy`]; the body returns
/// [`TestCaseResult`] implicitly (use `prop_assert!`/`prop_assert_eq!`
/// or `return Err(TestCaseError::fail(..))`).
#[macro_export]
macro_rules! proptest {
    (cases = $cases:expr; $($(#[$meta:meta])* fn $name:ident( $($p:pat_param in $s:expr),+ $(,)? ) $body:block)+) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let strat = ($($s,)+);
                $crate::prop::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    $cases,
                    strat,
                    |($($p,)+)| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )+
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::prop::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::prop::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let strat = (0u64..1000, vec_of(0u32..10, 1..5));
        let mut a = SmallRng::seed_from_u64(123);
        let mut b = SmallRng::seed_from_u64(123);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn int_shrink_halves_toward_floor() {
        let strat = 10u32..100;
        let mut v = 90;
        let mut trail = vec![v];
        while let Some(s) = strat.shrink(&v) {
            v = s;
            trail.push(v);
        }
        assert_eq!(*trail.last().unwrap(), 10);
        assert!(trail.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn vec_shrink_halves_length() {
        let strat = vec_of(0u8..=255, 2..64);
        let v: Vec<u8> = (0..40).collect();
        let s = strat.shrink(&v).unwrap();
        assert_eq!(s.len(), 21); // len shrink: 2 + (40-2)/2
    }

    #[test]
    fn shrink_walk_finds_boundary() {
        // Property: x < 60. Failing inputs halve toward the range floor;
        // the walk stops at the last failing value on the path.
        let strat = 0u32..1000;
        let (min, _err, _steps) = shrink_failure(
            &strat,
            &|x| {
                if x < 60 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("too big"))
                }
            },
            999,
            TestCaseError::fail("too big"),
        );
        assert!(min >= 60 && min < 125, "halving walk landed at {min}");
    }

    #[test]
    #[should_panic(expected = "DAOS_PROP_SEED")]
    fn failure_reports_seed() {
        run_cases("always_fails", 4, 0u32..10, |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    proptest! {
        cases = 32;

        fn macro_smoke(a in 0u32..100, b in 0u32..100, flip in any_bool()) {
            let (a, b) = if flip { (b, a) } else { (a, b) };
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a as u64 + b as u64 <= 198, "draws stay in range");
        }

        fn combinators_smoke(
            xs in vec_of(0u64..50, 1..8),
            tag in one_of![Just(0u8), Just(1u8), 2u8..5],
            pick in select(vec!["a", "b"]),
        ) {
            prop_assert!(xs.len() < 8);
            prop_assert!(tag < 5);
            prop_assert!(pick == "a" || pick == "b");
        }
    }
}
