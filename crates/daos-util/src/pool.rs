//! The workspace's single worker pool: per-worker queues with work
//! stealing, shared by every parallel consumer in the tree.
//!
//! Two frontends drive one scheduler ([`StealQueues`]):
//!
//! * [`WorkerPool`] — persistent threads for long-lived engines (the
//!   fleet runner submits one batch of shard ticks per virtual tick;
//!   respawning threads per tick would dwarf the work). Tasks are
//!   `'static` closures; [`WorkerPool::run_batch`] blocks until the
//!   whole batch finished and returns results in submission order.
//! * [`par_map`] — a scoped one-shot map for borrowing closures (figure
//!   sweeps map over hundreds of independent simulations). Threads live
//!   for the call only, so `f` may borrow from the caller's stack.
//!
//! Work items are deterministic simulations, so parallel and serial
//! execution produce identical numbers; stealing only changes *which
//! thread* runs an item, never its result.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

fn recover<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Per-worker FIFO queues with stealing: a worker drains its own queue
/// first and, when empty, takes work from the *back* of a sibling's
/// queue (classic steal-from-the-cold-end discipline, which keeps the
/// owner's cache-warm front intact).
///
/// Queue slots hold whole items; a poisoned mutex therefore carries no
/// torn state and poison recovery is safe throughout.
pub struct StealQueues<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    next: AtomicUsize,
    steals: AtomicU64,
}

impl<T> StealQueues<T> {
    /// `nr` empty queues (at least one).
    pub fn new(nr: usize) -> StealQueues<T> {
        let nr = nr.max(1);
        StealQueues {
            queues: (0..nr).map(|_| Mutex::new(VecDeque::new())).collect(),
            next: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Number of queues (= workers this scheduler feeds).
    pub fn nr_queues(&self) -> usize {
        self.queues.len()
    }

    /// Push an item onto the next queue, round-robin, so a batch starts
    /// out evenly spread and stealing only handles imbalance.
    pub fn push(&self, item: T) {
        // ordering: Relaxed — the counter only spreads items across
        // queues; the queue mutex publishes the item itself.
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        recover(self.queues[i].lock()).push_back(item);
    }

    /// Pop work for `worker`: its own queue's front, else steal from the
    /// back of the first non-empty sibling (scanning from `worker + 1`
    /// so contention spreads).
    pub fn pop(&self, worker: usize) -> Option<T> {
        let n = self.queues.len();
        let own = worker % n;
        if let Some(item) = recover(self.queues[own].lock()).pop_front() {
            return Some(item);
        }
        for off in 1..n {
            let victim = (own + off) % n;
            if let Some(item) = recover(self.queues[victim].lock()).pop_back() {
                // ordering: Relaxed — a statistics counter, read only
                // after the batch completes.
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(item);
            }
        }
        None
    }

    /// Steals observed so far.
    pub fn steals(&self) -> u64 {
        // ordering: Relaxed — statistics only.
        self.steals.load(Ordering::Relaxed)
    }
}

/// Scheduler statistics of a [`WorkerPool`], for fleet summaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed per worker, by worker index.
    pub executed: Vec<u64>,
    /// Tasks a worker took from a sibling's queue.
    pub steals: u64,
}

type Task = Box<dyn FnOnce() + Send>;

struct PoolShared {
    queues: StealQueues<Task>,
    /// Signals "work may be available" to sleeping workers; the guarded
    /// counter increments per push so a wake-up between check and wait
    /// is never lost.
    signal: Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
    executed: Vec<AtomicU64>,
}

impl PoolShared {
    fn notify(&self, all: bool) {
        *recover(self.signal.lock()) += 1;
        if all {
            self.wake.notify_all();
        } else {
            self.wake.notify_one();
        }
    }
}

/// A shared pool of persistent worker threads draining [`StealQueues`].
///
/// Construction spawns the threads once; [`run_batch`](Self::run_batch)
/// distributes a batch and blocks until every task ran. Dropping the
/// pool shuts the workers down and joins them.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool with `nr` workers (0 = [`default_parallelism`]).
    ///
    /// [`default_parallelism`]: Self::default_parallelism
    pub fn new(nr: usize) -> WorkerPool {
        let nr = if nr == 0 { Self::default_parallelism() } else { nr };
        let shared = Arc::new(PoolShared {
            queues: StealQueues::new(nr),
            signal: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            executed: (0..nr).map(|_| AtomicU64::new(0)).collect(),
        });
        let workers = (0..nr)
            .map(|id| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(id, &shared))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// The machine's available parallelism (at least 1).
    pub fn default_parallelism() -> usize {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    }

    /// Number of worker threads.
    pub fn nr_workers(&self) -> usize {
        self.workers.len()
    }

    /// Scheduler statistics so far (cumulative over all batches).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            executed: self
                .shared
                .executed
                .iter()
                // ordering: Relaxed — statistics only.
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            steals: self.shared.queues.steals(),
        }
    }

    /// Submit one fire-and-forget task. Unlike [`run_batch`] the caller
    /// does not wait: the task runs whenever a worker frees up, and its
    /// completion is the submitter's business to observe (a long-lived
    /// consumer like the obs server parks its own loops in the pool this
    /// way — one submitted pump per worker). Panics in the task are
    /// swallowed by the worker loop exactly as for batch tasks.
    ///
    /// [`run_batch`]: Self::run_batch
    pub fn submit<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.shared.queues.push(Box::new(task));
        self.shared.notify(false);
    }

    /// Run `tasks` to completion across the workers and return their
    /// results in submission order. The caller blocks until the whole
    /// batch finished; worker threads and queues are reused, so a tick
    /// loop can call this once per tick without respawn cost.
    pub fn run_batch<R, F>(&self, tasks: Vec<F>) -> Vec<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let outputs: Arc<Vec<Mutex<Option<R>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        for (i, task) in tasks.into_iter().enumerate() {
            let outputs = outputs.clone();
            let done = done.clone();
            self.shared.queues.push(Box::new(move || {
                // `CompletionGuard` signals even if the task panics, so
                // the waiting caller never deadlocks; it observes the
                // missing output and panics itself.
                let _guard = CompletionGuard(&done);
                let r = task();
                *recover(outputs[i].lock()) = Some(r);
            }));
            self.shared.notify(false);
        }
        // One extra broadcast after the last push: with more workers
        // than tasks, notify_one may have woken the same worker twice.
        self.shared.notify(true);
        let (count, cv) = &*done;
        let mut finished = recover(count.lock());
        while *finished < n {
            finished = recover(cv.wait(finished));
        }
        // Take results out of the slots rather than unwrapping the Arc:
        // a worker's clone may outlive its completion signal by an
        // instant, but every slot is already written (or provably never
        // will be, if the task panicked).
        outputs
            .iter()
            .map(|m| {
                recover(m.lock())
                    .take()
                    // lint: allow(panic, a worker task died before writing its slot — surface it)
                    .expect("pool worker panicked while running a batch task")
            })
            .collect()
    }
}

/// Bumps the batch completion count on drop — panic-safe signalling.
struct CompletionGuard<'a>(&'a (Mutex<usize>, Condvar));

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        let (count, cv) = self.0;
        *recover(count.lock()) += 1;
        cv.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // ordering: Release pairs with the Acquire load in worker_loop —
        // a worker that sees the flag also sees every task pushed first.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify(true);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(id: usize, shared: &PoolShared) {
    loop {
        // Read the signal counter *before* draining: a push that lands
        // after this read bumps the counter, so the wait below is
        // skipped and the task is found on the next loop — no lost
        // wake-ups.
        let seen = *recover(shared.signal.lock());
        while let Some(task) = shared.queues.pop(id) {
            // Count *before* running: the bump then happens-before the
            // task's completion signal, so a caller that returned from
            // `run_batch` reads fully-accounted stats.
            // ordering: Relaxed — statistics only.
            shared.executed[id].fetch_add(1, Ordering::Relaxed);
            // A panicking task unwinds through the box; the batch's
            // completion guard still fires (Drop), and the caller
            // reports the dead slot. Swallowing the unwind here keeps
            // the worker alive for later batches.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
        }
        // ordering: Acquire pairs with the Release store in Drop.
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut seq = recover(shared.signal.lock());
        while *seq == seen {
            // ordering: Acquire pairs with the Release store in Drop.
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            seq = recover(shared.wake.wait(seq));
        }
    }
}

/// Map `f` over `items` in parallel, preserving order of results — the
/// scoped frontend of the pool for borrowing closures. Degrades to a
/// serial map on a single-core box or a tiny batch.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let nr_threads = WorkerPool::default_parallelism().min(n);
    if nr_threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queues: StealQueues<usize> = StealQueues::new(nr_threads);
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    for i in 0..n {
        queues.push(i);
    }

    // A worker panic propagates out of the scope when its JoinHandle is
    // detached-joined at scope exit, so no explicit error plumbing is
    // needed; slot mutexes carry no torn state (each slot is written
    // whole, once), so poison recovery is safe everywhere.
    std::thread::scope(|scope| {
        for id in 0..nr_threads {
            let queues = &queues;
            let inputs = &inputs;
            let outputs = &outputs;
            let f = &f;
            scope.spawn(move || {
                while let Some(i) = queues.pop(id) {
                    let item = recover(inputs[i].lock())
                        .take()
                        // lint: allow(panic, each index is queued exactly once)
                        .expect("each index claimed once");
                    *recover(outputs[i].lock()) = Some(f(item));
                }
            });
        }
    });

    outputs
        .into_iter()
        .map(|m| {
            recover(m.into_inner())
                // lint: allow(panic, a worker panic would have propagated at scope exit)
                .expect("all indices processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = par_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![41], |x: i32| x + 1), vec![42]);
    }

    #[test]
    fn non_copy_items() {
        let items: Vec<String> = (0..20).map(|i| format!("s{i}")).collect();
        let out = par_map(items, |s| s.len());
        assert_eq!(out.len(), 20);
        assert_eq!(out[0], 2);
        assert_eq!(out[10], 3);
    }

    #[test]
    fn parallel_matches_serial_for_deterministic_work() {
        let serial: Vec<u64> = (0..64u64).map(|x| x.wrapping_mul(x) ^ 0xDA05).collect();
        let parallel = par_map((0..64u64).collect(), |x| x.wrapping_mul(x) ^ 0xDA05);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn steal_queues_hand_out_every_item_once() {
        let q: StealQueues<usize> = StealQueues::new(4);
        for i in 0..100 {
            q.push(i);
        }
        let mut got: Vec<usize> = Vec::new();
        // Worker 3 drains everything: 1/4 owned, 3/4 stolen.
        while let Some(i) = q.pop(3) {
            got.push(i);
        }
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(q.steals(), 75);
    }

    #[test]
    fn pool_batch_preserves_order_and_reuses_workers() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.nr_workers(), 3);
        for round in 0..5u64 {
            let tasks: Vec<_> = (0..20u64)
                .map(|i| move || i.wrapping_mul(i) ^ round)
                .collect();
            let out = pool.run_batch(tasks);
            let want: Vec<u64> = (0..20u64).map(|i| i.wrapping_mul(i) ^ round).collect();
            assert_eq!(out, want);
        }
        let stats = pool.stats();
        assert_eq!(stats.executed.len(), 3);
        assert_eq!(stats.executed.iter().sum::<u64>(), 100);
    }

    #[test]
    fn submitted_tasks_run_without_a_waiting_caller() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = WorkerPool::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        for i in 0..16u64 {
            let hits = hits.clone();
            pool.submit(move || {
                // ordering: Relaxed — the pool's Drop join is the
                // synchronisation point the final assert relies on.
                hits.fetch_add(i + 1, Ordering::Relaxed);
            });
        }
        drop(pool); // joins the workers, so every submitted task ran
        // ordering: Relaxed — the join above is the synchronisation.
        assert_eq!(hits.load(Ordering::Relaxed), (1..=16).sum::<u64>());
    }

    #[test]
    fn submit_and_run_batch_share_the_queues() {
        let pool = WorkerPool::new(3);
        let flag = Arc::new(AtomicBool::new(false));
        let f = flag.clone();
        // ordering: Release pairs with the Acquire load after the batch.
        pool.submit(move || f.store(true, Ordering::Release));
        let out = pool.run_batch((0..8u64).map(|i| move || i * 3).collect::<Vec<_>>());
        assert_eq!(out, (0..8u64).map(|i| i * 3).collect::<Vec<_>>());
        drop(pool);
        // ordering: Acquire pairs with the Release store in the task.
        assert!(flag.load(Ordering::Acquire));
    }

    #[test]
    fn pool_empty_batch_returns_immediately() {
        let pool = WorkerPool::new(2);
        let out: Vec<u64> = pool.run_batch(Vec::<fn() -> u64>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn pool_with_more_workers_than_tasks() {
        let pool = WorkerPool::new(8);
        let out = pool.run_batch(vec![|| 7u64]);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn pool_zero_workers_means_auto() {
        let pool = WorkerPool::new(0);
        assert!(pool.nr_workers() >= 1);
        let out = pool.run_batch((0..4).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn uneven_batches_keep_results_deterministic() {
        // Tasks with wildly different costs: stealing rebalances, the
        // result vector is identical to the 1-worker pool's.
        let slowload = |i: u64| {
            let mut acc = i;
            for _ in 0..(i % 7) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let serial = WorkerPool::new(1)
            .run_batch((0..64u64).map(|i| move || slowload(i)).collect::<Vec<_>>());
        let parallel = WorkerPool::new(4)
            .run_batch((0..64u64).map(|i| move || slowload(i)).collect::<Vec<_>>());
        assert_eq!(serial, parallel);
    }
}
