//! A minimal wall-clock timing harness — the in-tree replacement for
//! criterion in the `daos-bench` bench binaries.
//!
//! Each benchmark runs a warm-up pass, then `samples` timed samples of
//! `iters` iterations each, and reports the **median** ns/iteration
//! (medians are robust to scheduler noise in a way means are not), plus
//! min/max for a spread estimate.

use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

/// One benchmark's timing summary, all in ns/iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Median over the samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Iterations per sample actually used.
    pub iters: u64,
}

impl Timing {
    /// `"  123.4 ns/iter (min 120.0, max 130.9, 1000 iters × N)"`.
    pub fn render(&self) -> String {
        format!(
            "{:>12.1} ns/iter (min {:.1}, max {:.1}, {} iters/sample)",
            self.median_ns, self.min_ns, self.max_ns, self.iters
        )
    }
}

/// A named group of benchmarks. Silent by default — attach a sink with
/// [`Harness::progress_to`] to stream results as they complete (bench
/// binaries pass stdout; library users and tests stay quiet).
pub struct Harness {
    group: String,
    samples: usize,
    /// Target wall time per sample, used to auto-size iteration counts.
    target_sample_ns: u64,
    results: Vec<(String, Timing)>,
    sink: Box<dyn Write>,
}

impl Harness {
    /// New harness for `group`, `samples` timed samples per benchmark
    /// (median-of-`samples`). Progress is discarded until a sink is
    /// attached with [`Harness::progress_to`].
    pub fn new(group: &str, samples: usize) -> Self {
        assert!(samples >= 1);
        Self {
            group: group.to_string(),
            samples,
            target_sample_ns: 20_000_000, // 20 ms per sample
            results: Vec::new(),
            sink: Box::new(std::io::sink()),
        }
    }

    /// Stream per-benchmark results to `w` as they complete.
    pub fn progress_to(mut self, mut w: Box<dyn Write>) -> Self {
        let _ = writeln!(w, "# bench group: {}", self.group);
        self.sink = w;
        self
    }

    /// Lower the per-sample wall-time target (for expensive setups).
    pub fn target_sample_ms(mut self, ms: u64) -> Self {
        self.target_sample_ns = ms * 1_000_000;
        self
    }

    /// Time `f`, auto-sizing the per-sample iteration count so one
    /// sample takes roughly the wall-time target.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> Timing {
        // Warm-up + calibration: time a single iteration.
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as u64;
        let iters = (self.target_sample_ns / once_ns).clamp(1, 1_000_000);
        self.bench_iters(name, iters, f)
    }

    /// Time `f` with an explicit per-sample iteration count (for
    /// stateful benchmarks where iterations are not interchangeable).
    pub fn bench_iters<R>(
        &mut self,
        name: &str,
        iters: u64,
        mut f: impl FnMut() -> R,
    ) -> Timing {
        assert!(iters >= 1);
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let timing = Timing {
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            iters,
        };
        let _ = writeln!(self.sink, "{}/{name}: {}", self.group, timing.render());
        self.results.push((name.to_string(), timing));
        timing
    }

    /// Time `f` with a fresh untimed `setup` value per iteration (for
    /// benchmarks that consume their input, e.g. first-fault paths).
    /// Each iteration is timed individually and only `f` is counted.
    pub fn bench_setup<S, R>(
        &mut self,
        name: &str,
        iters: u64,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) -> Timing {
        assert!(iters >= 1);
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let mut total_ns = 0u128;
                for _ in 0..iters {
                    let input = setup();
                    let t = Instant::now();
                    black_box(f(input));
                    total_ns += t.elapsed().as_nanos();
                }
                total_ns as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let timing = Timing {
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            iters,
        };
        let _ = writeln!(self.sink, "{}/{name}: {}", self.group, timing.render());
        self.results.push((name.to_string(), timing));
        timing
    }

    /// All results recorded so far, in run order.
    pub fn results(&self) -> &[(String, Timing)] {
        &self.results
    }

    /// Render results as a CSV artifact (`name,median_ns,min_ns,max_ns`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,median_ns,min_ns,max_ns,iters\n");
        for (name, t) in &self.results {
            out.push_str(&format!(
                "{name},{:.1},{:.1},{:.1},{}\n",
                t.median_ns, t.min_ns, t.max_ns, t.iters
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust_and_ordered() {
        let mut h = Harness::new("test", 5).target_sample_ms(1);
        let t = h.bench_iters("noop_sum", 1000, || {
            (0..100u64).sum::<u64>()
        });
        assert!(t.min_ns <= t.median_ns && t.median_ns <= t.max_ns);
        assert_eq!(h.results().len(), 1);
        let csv = h.to_csv();
        assert!(csv.starts_with("name,median_ns"));
        assert!(csv.contains("noop_sum"));
    }

    #[test]
    fn auto_sizing_runs() {
        let mut h = Harness::new("test", 3).target_sample_ms(1);
        let t = h.bench("tiny", || black_box(1 + 1));
        assert!(t.iters >= 1);
    }
}
