//! Zero-dependency support library for the DAOS reproduction.
//!
//! Everything the workspace previously pulled from crates.io lives here
//! instead, so a clean clone builds and tests with no network and an
//! empty registry cache (`cargo build --release --offline`). Hermeticity
//! is a correctness feature, not a convenience: the paper's figures are
//! regenerated from *deterministic* seeded simulations, and determinism
//! only holds if the random streams are produced by code under our
//! control (see `rng` for the stream-stability guarantee).
//!
//! Modules:
//!
//! * [`rng`] — xoshiro256++ PRNG with SplitMix64 seeding, exposing the
//!   `SmallRng`-style surface the simulation uses.
//! * [`json`] — a small JSON value type, writer and parser, plus the
//!   [`json::ToJson`]/[`json::FromJson`] traits and the
//!   [`json_struct!`]/[`json_enum!`] impl-generating macros.
//! * [`prop`] — a deterministic seeded property-test harness (fixed case
//!   count, failing seed printed, simple halving shrink).
//! * [`bench`] — a median-of-N wall-clock timing harness for the bench
//!   binaries.
//! * [`pool`] — the workspace's single worker pool: a work-stealing
//!   scheduler with a persistent-thread frontend ([`pool::WorkerPool`],
//!   driving the fleet engine's shard ticks) and a scoped map frontend
//!   ([`pool::par_map`], driving the figure sweeps).

pub mod bench;
pub mod json;
pub mod pool;
pub mod prop;
pub mod rng;
