//! A small JSON library: value type, writer, parser, line-oriented
//! reader, and the [`ToJson`]/[`FromJson`] conversion traits with
//! impl-generating macros for plain structs and fieldless enums.
//!
//! Numbers are kept in three lanes (`U64`, `I64`, `F64`) so 64-bit
//! addresses and byte counts round-trip exactly — a plain `f64` number
//! type would silently corrupt addresses above 2⁵³.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (unsigned 64-bit lane).
    U64(u64),
    /// A negative integer (signed lane; only used when < 0).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// An error from parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// Build an error from any displayable message.
    pub fn msg(m: impl Into<String>) -> Self {
        JsonError(m.into())
    }
}

impl Json {
    /// Object field by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field decoded as `T`; errors mention the key.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        let v = self
            .get(key)
            .ok_or_else(|| JsonError::msg(format!("missing field '{key}'")))?;
        T::from_json(v).map_err(|e| JsonError::msg(format!("field '{key}': {}", e.0)))
    }

    /// The value as an array, or an error.
    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Array(xs) => Ok(xs),
            other => Err(JsonError::msg(format!("expected array, got {other:?}"))),
        }
    }

    /// The value as a string slice, or an error.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::msg(format!("expected string, got {other:?}"))),
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Array(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; encode as null like serde_json does.
        out.push_str("null");
        return;
    }
    // Shortest representation that round-trips (Rust's float Display).
    let s = format!("{x}");
    out.push_str(&s);
    // Keep the float lane on re-parse: `1.0` must not come back as `U64(1)`.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document (surrounding whitespace allowed).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::msg(format!(
            "trailing garbage at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

/// Parse a line-oriented stream: one JSON document per non-empty line
/// (the JSONL convention used by record files and config files). Errors
/// carry the 1-based line number.
pub fn parse_lines(text: &str) -> Result<Vec<Json>, JsonError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v =
            parse(line).map_err(|e| JsonError::msg(format!("line {}: {}", i + 1, e.0)))?;
        out.push(v);
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(JsonError::msg(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(JsonError::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(out));
                }
                _ => return Err(JsonError::msg(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(out));
                }
                _ => {
                    return Err(JsonError::msg(format!("bad object at byte {}", self.pos)))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::msg("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::msg("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(JsonError::msg(format!(
                                "bad escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let Some(c) = s.chars().next() else {
                        return Err(JsonError::msg("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::msg("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError::msg(format!("bad number '{text}'")))
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Encode `self`.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decode from `v`.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string)
    }
}

macro_rules! json_uint {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let u = match v {
                    Json::U64(u) => *u,
                    Json::F64(x) if x.fract() == 0.0 && *x >= 0.0 => *x as u64,
                    other => {
                        return Err(JsonError::msg(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(u)
                    .map_err(|_| JsonError::msg(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

json_uint!(u8, u16, u32, u64, usize);

macro_rules! json_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let i = *self as i64;
                if i >= 0 {
                    Json::U64(i as u64)
                } else {
                    Json::I64(i)
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = match v {
                    Json::U64(u) => i64::try_from(*u)
                        .map_err(|_| JsonError::msg(format!("{u} too large")))?,
                    Json::I64(i) => *i,
                    Json::F64(x) if x.fract() == 0.0 => *x as i64,
                    other => {
                        return Err(JsonError::msg(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(i)
                    .map_err(|_| JsonError::msg(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

json_int!(i8, i16, i32, i64, isize);

impl ToJson for u128 {
    /// 128-bit counters are encoded as decimal strings: they do not fit
    /// the `u64` lane and would lose precision as `f64`.
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for u128 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => s
                .parse()
                .map_err(|_| JsonError::msg(format!("bad u128 '{s}'"))),
            Json::U64(u) => Ok(*u as u128),
            other => Err(JsonError::msg(format!("expected u128, got {other:?}"))),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::F64(x) => Ok(*x),
            Json::U64(u) => Ok(*u as f64),
            Json::I64(i) => Ok(*i as f64),
            other => Err(JsonError::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::F64(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|x| x as f32)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(x) => x.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()?.iter().map(T::from_json).collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let xs = v.as_array()?;
        if xs.len() != 2 {
            return Err(JsonError::msg(format!("expected pair, got {} items", xs.len())));
        }
        Ok((A::from_json(&xs[0])?, B::from_json(&xs[1])?))
    }
}

impl<K: ToString, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(JsonError::msg(format!("expected object, got {other:?}"))),
        }
    }
}

/// Generate [`ToJson`]/[`FromJson`] for a struct with named fields, all
/// of which are themselves `ToJson + FromJson`:
///
/// ```ignore
/// json_struct!(Quota { sz_limit, reset_interval });
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Object(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    ),)+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok(Self { $($field: v.field(stringify!($field))?,)+ })
            }
        }
    };
}

/// Generate [`ToJson`]/[`FromJson`] for a fieldless enum, encoded as the
/// variant name string:
///
/// ```ignore
/// json_enum!(ThpMode { Never, Always, Madvise });
/// ```
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                let name = match self {
                    $(Self::$variant => stringify!($variant),)+
                };
                $crate::json::Json::Str(name.to_string())
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                match v.as_str()? {
                    $(stringify!($variant) => Ok(Self::$variant),)+
                    other => Err($crate::json::JsonError::msg(format!(
                        "unknown {} variant '{other}'",
                        stringify!($ty)
                    ))),
                }
            }
        }
    };
}

/// Build a `{"Variant": payload}` single-key object — the encoding this
/// workspace uses for enum variants that carry data.
pub fn tagged(variant: &str, payload: Json) -> Json {
    Json::Object(vec![(variant.to_string(), payload)])
}

/// Split a `{"Variant": payload}` single-key object into its tag and
/// payload.
pub fn untag(v: &Json) -> Result<(&str, &Json), JsonError> {
    match v {
        Json::Object(fields) if fields.len() == 1 => {
            Ok((fields[0].0.as_str(), &fields[0].1))
        }
        other => Err(JsonError::msg(format!(
            "expected single-key variant object, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for text in ["null", "true", "false", "0", "-7", "18446744073709551615", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string_compact(), text);
        }
    }

    #[test]
    fn u64_precision_survives() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v, Json::U64(u64::MAX));
        assert_eq!(u64::from_json(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn float_lane_is_sticky() {
        let v = Json::F64(1.0);
        let back = parse(&v.to_string_compact()).unwrap();
        assert_eq!(back, v, "1.0 must stay F64 through a roundtrip");
    }

    #[test]
    fn nested_roundtrip() {
        let v = Json::Object(vec![
            ("a".into(), Json::Array(vec![Json::U64(1), Json::Null])),
            ("b \"q\"".into(), Json::Str("line\nbreak".into())),
            ("c".into(), Json::F64(-0.25)),
        ]);
        let text = v.to_string_compact();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn jsonl_skips_blanks_and_comments() {
        let vs = parse_lines("1\n\n# note\n  {\"x\":2}\n").unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[1].field::<u32>("x").unwrap(), 2);
    }

    #[test]
    fn tagged_helpers() {
        let v = tagged("Zram", Json::U64(4));
        let (tag, payload) = untag(&v).unwrap();
        assert_eq!(tag, "Zram");
        assert_eq!(payload, &Json::U64(4));
        assert!(untag(&Json::Null).is_err());
    }
}
