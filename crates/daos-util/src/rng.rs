//! Deterministic pseudo-random number generation: xoshiro256++ seeded
//! via SplitMix64.
//!
//! # Stream stability guarantee
//!
//! Every figure and experiment in this repository is regenerated from
//! seeded simulations, so the exact `u64` stream produced for a given
//! seed is part of the repository's *interface*: results recorded in
//! `results/` must be bit-identical across machines, architectures and
//! future PRs. Concretely:
//!
//! * [`SmallRng::seed_from_u64`] expands the seed with the reference
//!   SplitMix64 sequence (four draws) into the xoshiro256++ state.
//! * [`SmallRng::next_u64`] is the reference xoshiro256++ algorithm
//!   (Blackman & Vigna, <https://prng.di.unimi.it/>).
//! * The derived draws ([`SmallRng::random`], [`SmallRng::random_range`],
//!   [`SmallRng::random_bool`], the `sample_*` helpers) each consume a
//!   documented, fixed number of `next_u64` outputs and map them with
//!   the fixed formulas below.
//!
//! Changing any of these mappings is a breaking change to every recorded
//! experiment and must regenerate `results/`. The known-answer tests in
//! `crates/daos-util/tests/rng_determinism.rs` pin the streams.

/// The reference SplitMix64 step: advances `state` and returns the next
/// output. Used for seed expansion so that similar seeds (0, 1, 2, …)
/// still yield well-decorrelated xoshiro states.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast, deterministic generator: xoshiro256++.
///
/// The name keeps the `rand::rngs::SmallRng` spelling the simulation
/// code was written against, but unlike `rand`'s `SmallRng` (whose
/// algorithm is explicitly unspecified and has changed between
/// releases), this one is pinned forever — see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Seed via four SplitMix64 draws (the reference seeding procedure).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// Derive an independent child generator from `parent` (one
    /// `next_u64` draw feeds a fresh SplitMix64 expansion).
    pub fn from_rng(parent: &mut SmallRng) -> Self {
        Self::seed_from_u64(parent.next_u64())
    }

    /// The reference xoshiro256++ step.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// High 32 bits of one `next_u64` draw.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw of type `T` (one `next_u64` consumed):
    /// `f64` in `[0, 1)` with 53 bits, `f32` in `[0, 1)` with 24 bits,
    /// integers over their full range, `bool` from the top bit.
    #[inline]
    pub fn random<T: FromU64>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// A uniform draw from an integer or float range
    /// (`lo..hi` or `lo..=hi`). Integer draws use 128-bit widening
    /// multiplication with rejection (Lemire), so they are unbiased;
    /// float draws map one 53-bit unit draw affinely onto the interval.
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (one draw; `p` clamped to `[0, 1]`).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// `true` with probability `numerator / denominator`.
    #[inline]
    pub fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above 1");
        (self.random_range(0..denominator as u64) as u32) < numerator
    }

    /// A uniform index into a collection of length `len`.
    ///
    /// Panics if `len == 0`.
    #[inline]
    pub fn sample_index(&mut self, len: usize) -> usize {
        self.random_range(0..len)
    }

    /// An index drawn proportionally to non-negative `weights`.
    ///
    /// Panics if `weights` is empty or sums to a non-finite or
    /// non-positive total.
    pub fn sample_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "empty weight list");
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weights must sum to a positive finite total"
        );
        let mut x = self.random::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle (consumes `len - 1` draws).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.random_range(0..=i);
            xs.swap(i, j);
        }
    }
}

/// Types producible from one uniform `u64` draw ([`SmallRng::random`]).
pub trait FromU64 {
    /// Map one uniform 64-bit draw onto `Self`.
    fn from_u64(bits: u64) -> Self;
}

impl FromU64 for u64 {
    #[inline]
    fn from_u64(bits: u64) -> u64 {
        bits
    }
}

impl FromU64 for u32 {
    #[inline]
    fn from_u64(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl FromU64 for bool {
    #[inline]
    fn from_u64(bits: u64) -> bool {
        (bits >> 63) != 0
    }
}

impl FromU64 for f64 {
    /// Top 53 bits scaled by 2⁻⁵³ — uniform in `[0, 1)`.
    #[inline]
    fn from_u64(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromU64 for f32 {
    /// Top 24 bits scaled by 2⁻²⁴ — uniform in `[0, 1)`.
    #[inline]
    fn from_u64(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`SmallRng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample(self, rng: &mut SmallRng) -> T;
}

/// Unbiased draw from `[0, bound)` via Lemire's widening-multiply
/// method with rejection.
#[inline]
fn lemire_u64(rng: &mut SmallRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Reject draws falling in the short final stripe so every residue
    // class is equally likely.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(lemire_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(lemire_u64(rng, span) as $t)
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(lemire_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(lemire_u64(rng, span + 1) as $t)
            }
        }
    )+};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let x = self.start + rng.random::<f64>() * (self.end - self.start);
        // Affine rounding can land exactly on `end`; fold it back.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let x = lo + rng.random::<f64>() * (hi - lo);
        x.clamp(lo, hi)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        let x = self.start + rng.random::<f32>() * (self.end - self.start);
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let x = lo + rng.random::<f32>() * (hi - lo);
        x.clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_expansion_matches_reference() {
        // State words for seed 0, per the reference SplitMix64.
        let rng = SmallRng::seed_from_u64(0);
        assert_eq!(
            rng.s,
            [
                16294208416658607535,
                7960286522194355700,
                487617019471545679,
                17909611376780542444
            ]
        );
    }

    #[test]
    fn full_domain_inclusive_ranges() {
        let mut rng = SmallRng::seed_from_u64(9);
        let _: u64 = rng.random_range(0..=u64::MAX);
        let _: i64 = rng.random_range(i64::MIN..=i64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.random_range(5u32..5);
    }

    #[test]
    fn weighted_sampling_prefers_heavy_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[rng.sample_weighted(&[1.0, 0.0, 9.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "{counts:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "seed 11 must actually permute");
    }
}
