//! The PRNG stream-stability contract: known-answer vectors for
//! xoshiro256++ with SplitMix64 seeding, determinism, and distribution
//! smoke tests. If any test here fails, recorded experiment results are
//! no longer reproducible — do not "fix" the vectors, fix the generator.

use daos_util::rng::SmallRng;

/// Reference outputs computed from the canonical xoshiro256++ /
/// SplitMix64 algorithms (prng.di.unimi.it).
#[test]
fn known_answer_vectors() {
    let expect: [(u64, [u64; 5]); 4] = [
        (
            0,
            [
                0x53175d61490b23df,
                0x61da6f3dc380d507,
                0x5c0fdf91ec9a7bfc,
                0x02eebf8c3bbe5e1a,
                0x7eca04ebaf4a5eea,
            ],
        ),
        (
            1,
            [
                0xcfc5d07f6f03c29b,
                0xbf424132963fe08d,
                0x19a37d5757aaf520,
                0xbf08119f05cd56d6,
                0x2f47184b86186fa4,
            ],
        ),
        (
            42,
            [
                0xd0764d4f4476689f,
                0x519e4174576f3791,
                0xfbe07cfb0c24ed8c,
                0xb37d9f600cd835b8,
                0xcb231c3874846a73,
            ],
        ),
        (
            0xdeadbeef,
            [
                0x0c520eb8fea98ede,
                0x2b74a6338b80e0e2,
                0xbe238770c3795322,
                0x5f235f98a244ea97,
                0xe004f0cc1514d858,
            ],
        ),
    ];
    for (seed, vals) in expect {
        let mut rng = SmallRng::seed_from_u64(seed);
        let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        assert_eq!(got, vals, "stream for seed {seed} drifted");
    }
}

#[test]
fn same_seed_identical_stream() {
    let mut a = SmallRng::seed_from_u64(0x5eed);
    let mut b = SmallRng::seed_from_u64(0x5eed);
    for _ in 0..10_000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    // And through the derived draws, which consume fixed draw counts.
    let mut a = SmallRng::seed_from_u64(7);
    let mut b = SmallRng::seed_from_u64(7);
    for _ in 0..1000 {
        assert_eq!(a.random_range(0u64..977), b.random_range(0u64..977));
        assert_eq!(a.random::<f64>(), b.random::<f64>());
        assert_eq!(a.random_bool(0.3), b.random_bool(0.3));
    }
}

#[test]
fn different_seeds_diverge() {
    let mut a = SmallRng::seed_from_u64(1);
    let mut b = SmallRng::seed_from_u64(2);
    let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
    assert_eq!(same, 0, "adjacent seeds must decorrelate via SplitMix64");
}

#[test]
fn from_rng_child_is_independent() {
    let mut parent = SmallRng::seed_from_u64(9);
    let mut child = SmallRng::from_rng(&mut parent);
    // Child is itself deterministic given the parent state…
    let mut parent2 = SmallRng::seed_from_u64(9);
    let mut child2 = SmallRng::from_rng(&mut parent2);
    assert_eq!(child.next_u64(), child2.next_u64());
    // …and does not replay the parent's stream.
    let mut p = SmallRng::seed_from_u64(9);
    p.next_u64(); // the draw that seeded the child
    let overlap = (0..64).filter(|_| p.next_u64() == child.next_u64()).count();
    assert_eq!(overlap, 0);
}

#[test]
fn random_range_respects_bounds() {
    let mut rng = SmallRng::seed_from_u64(100);
    for _ in 0..10_000 {
        let x = rng.random_range(17u64..29);
        assert!((17..29).contains(&x));
        let y = rng.random_range(-5i32..=5);
        assert!((-5..=5).contains(&y));
        let z = rng.random_range(0.25f64..=0.75);
        assert!((0.25..=0.75).contains(&z));
        let w = rng.random_range(3usize..4); // single-value range
        assert_eq!(w, 3);
    }
}

#[test]
fn unit_draws_stay_in_unit_interval() {
    let mut rng = SmallRng::seed_from_u64(101);
    for _ in 0..10_000 {
        let x: f64 = rng.random();
        assert!((0.0..1.0).contains(&x));
        let y: f32 = rng.random();
        assert!((0.0..1.0).contains(&y));
    }
}

/// Chi-square-flavoured uniformity smoke test: 16 buckets, 64k draws.
/// Expected 4096/bucket; bound |obs - exp| < 5 sigma (sigma ≈ 62).
#[test]
fn random_range_uniformity_smoke() {
    let mut rng = SmallRng::seed_from_u64(2024);
    const BUCKETS: usize = 16;
    const DRAWS: usize = 65_536;
    let mut counts = [0usize; BUCKETS];
    for _ in 0..DRAWS {
        counts[rng.random_range(0..BUCKETS)] += 1;
    }
    let exp = (DRAWS / BUCKETS) as f64;
    let sigma = (exp * (1.0 - 1.0 / BUCKETS as f64)).sqrt();
    for (i, &c) in counts.iter().enumerate() {
        assert!(
            (c as f64 - exp).abs() < 5.0 * sigma,
            "bucket {i}: {c} vs expected {exp} (5σ = {:.0})",
            5.0 * sigma
        );
    }
}

/// Lemire rejection really is unbiased for an awkward modulus: a bound
/// just above a power of two, where plain modulo would skew low values.
#[test]
fn uniformity_awkward_modulus() {
    let mut rng = SmallRng::seed_from_u64(77);
    const BOUND: u64 = 3; // u64::MAX % 3 != 0 → modulo bias would show
    let mut counts = [0u64; BOUND as usize];
    for _ in 0..90_000 {
        counts[rng.random_range(0..BOUND) as usize] += 1;
    }
    for &c in &counts {
        assert!((c as i64 - 30_000).unsigned_abs() < 1_000, "{counts:?}");
    }
}

#[test]
fn random_bool_tracks_probability() {
    let mut rng = SmallRng::seed_from_u64(55);
    let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
    assert!((24_000..26_000).contains(&hits), "p=0.25 gave {hits}/100000");
    let mut rng = SmallRng::seed_from_u64(56);
    assert_eq!((0..1000).filter(|_| rng.random_bool(0.0)).count(), 0);
    let mut rng = SmallRng::seed_from_u64(57);
    assert_eq!((0..1000).filter(|_| rng.random_bool(1.0)).count(), 1000);
}
