//! The unified run entry point: one builder that scales from a single
//! process to a fleet.
//!
//! [`Session`] supersedes the [`crate::run`] / [`crate::run_observed`]
//! duo (both kept as thin shims). A session names *what* to run — a
//! machine, a configuration, a workload spec — and the builder chain
//! adds *how*: a seed, an optional per-epoch [`RunObserver`], and
//! optionally a [`FleetSpec`] that replicates the workload across
//! thousands of processes under the sharded fleet engine
//! ([`crate::fleet`]).
//!
//! ```no_run
//! use daos::{FleetSpec, RunConfig, Session};
//! use daos_mm::MachineProfile;
//! use daos_workloads::by_path;
//!
//! let machine = MachineProfile::i3_metal();
//! let config = RunConfig::prcl();
//! let spec = by_path("parsec3/freqmine").unwrap();
//!
//! // Single process — exactly what `run()` did:
//! let one = Session::new(&machine, &config, &spec).seed(42).execute().unwrap();
//! let result = one.into_single();
//!
//! // The same run, 1024× with 4 tenant label families:
//! let fleet = Session::new(&machine, &config, &spec)
//!     .seed(42)
//!     .fleet(FleetSpec::new(1024).tenants(4))
//!     .execute()
//!     .unwrap();
//! let summary = fleet.fleet.unwrap();
//! println!("{}", summary.render());
//! # let _ = result;
//! ```

use daos_mm::error::MmResult;
use daos_mm::machine::MachineProfile;
use daos_workloads::WorkloadSpec;

use crate::config::RunConfig;
use crate::fleet::{FleetEngine, FleetObserver, FleetSpec, FleetSummary};
use crate::runner::{execute_single, RunObserver, RunResult};

/// Everything a session produced: one [`RunResult`] per process (a
/// single run is `runs.len() == 1`), plus the [`FleetSummary`] when a
/// fleet ran.
#[derive(Debug)]
pub struct SessionResult {
    /// Per-process results, in global process order.
    pub runs: Vec<RunResult>,
    /// Fleet-level aggregates (None for a single-process session).
    pub fleet: Option<FleetSummary>,
}

impl SessionResult {
    /// The sole result of a single-process session (or the first
    /// process of a fleet).
    pub fn into_single(self) -> RunResult {
        self.runs
            .into_iter()
            .next()
            // lint: allow(panic, every executed session yields at least one run — nr_processes is clamped to ≥ 1)
            .expect("session produced no runs")
    }
}

/// Builder for one experiment run — single process or fleet. See the
/// [module docs](self) for the shape; `execute()` consumes the session.
pub struct Session<'a> {
    machine: &'a MachineProfile,
    config: &'a RunConfig,
    spec: &'a WorkloadSpec,
    seed: u64,
    observer: Option<&'a mut dyn RunObserver>,
    fleet: Option<FleetSpec>,
    fleet_observer: Option<&'a mut dyn FleetObserver>,
}

impl<'a> Session<'a> {
    /// A session running `spec` under `config` on `machine` (seed 0, no
    /// observers, single process).
    pub fn new(
        machine: &'a MachineProfile,
        config: &'a RunConfig,
        spec: &'a WorkloadSpec,
    ) -> Self {
        Session {
            machine,
            config,
            spec,
            seed: 0,
            observer: None,
            fleet: None,
            fleet_observer: None,
        }
    }

    /// Fix all randomness (workload draws, monitor sampling, region
    /// splits) to `seed`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Observe a single-process run once per epoch (ignored when a
    /// fleet spec is set — use [`fleet_observer`](Self::fleet_observer)).
    pub fn observer(mut self, observer: &'a mut dyn RunObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Scale to a fleet: replicate the workload `spec.nr_processes`
    /// times under the sharded engine.
    pub fn fleet(mut self, spec: FleetSpec) -> Self {
        self.fleet = Some(spec);
        self
    }

    /// Observe a fleet run once per tick.
    pub fn fleet_observer(mut self, observer: &'a mut dyn FleetObserver) -> Self {
        self.fleet_observer = Some(observer);
        self
    }

    /// Run to completion. A session without a fleet spec is *exactly*
    /// the old `run_observed` (same instruction sequence); with one, the
    /// fleet engine takes over — and a `FleetSpec::new(1)` fleet still
    /// produces a byte-identical `RunResult` (the equivalence pin).
    pub fn execute(self) -> MmResult<SessionResult> {
        match self.fleet {
            None => {
                let run =
                    execute_single(self.machine, self.config, self.spec, self.seed, self.observer)?;
                Ok(SessionResult { runs: vec![run], fleet: None })
            }
            Some(fleet) => {
                let mut engine =
                    FleetEngine::new(self.machine, self.config, self.spec, fleet, self.seed)?;
                engine.run(self.fleet_observer)?;
                let (runs, summary) = engine.finish()?;
                Ok(SessionResult { runs, fleet: Some(summary) })
            }
        }
    }
}
