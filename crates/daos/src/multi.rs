//! Multi-target monitoring: one logical monitor covering several
//! processes' virtual address spaces, as DAMON's multi-target contexts
//! do (one `damon_target` per pid, each with its own region set).
//!
//! Composition keeps the semantics exact: each target gets its own
//! [`MonitorCtx`] (regions of different processes must never merge —
//! their addresses are unrelated), while attributes, stepping and
//! overhead accounting are shared. For whole-machine monitoring without
//! per-process attribution, physical monitoring (`prec`) remains the
//! cheaper choice.

use daos_mm::clock::Ns;
use daos_mm::process::Pid;
use daos_mm::system::MemorySystem;
use daos_monitor::{Aggregation, MonitorAttrs, MonitorCtx, OverheadStats, VaddrPrimitives};

/// One aggregation window from one target process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetAggregation {
    /// The monitored process.
    pub pid: Pid,
    /// Its aggregation window.
    pub aggregation: Aggregation,
}

/// A monitor over several processes' virtual address spaces.
#[derive(Debug)]
pub struct MultiMonitor {
    ctxs: Vec<(Pid, MonitorCtx<VaddrPrimitives>)>,
    scratch: Vec<Aggregation>,
}

impl MultiMonitor {
    /// Monitor each of `pids` with the same attributes. Each target gets
    /// an independent region set and sampling stream.
    pub fn new(
        attrs: MonitorAttrs,
        pids: &[Pid],
        sys: &MemorySystem,
        now: Ns,
        seed: u64,
    ) -> Self {
        let ctxs = pids
            .iter()
            .map(|&pid| {
                let prim = VaddrPrimitives::new(pid);
                (pid, MonitorCtx::new(attrs, prim, sys, now, seed ^ (pid as u64) << 17))
            })
            .collect();
        Self { ctxs, scratch: Vec::new() }
    }

    /// Advance every target to `now`; completed windows are appended to
    /// `sink` tagged with their pid.
    pub fn step(&mut self, sys: &mut MemorySystem, now: Ns, sink: &mut Vec<TargetAggregation>) {
        for (pid, ctx) in &mut self.ctxs {
            ctx.step(sys, now, &mut self.scratch);
            for aggregation in self.scratch.drain(..) {
                sink.push(TargetAggregation { pid: *pid, aggregation });
            }
        }
    }

    /// Total monitor CPU time pending since the last drain (all targets).
    pub fn take_work_ns(&mut self) -> Ns {
        self.ctxs.iter_mut().map(|(_, c)| c.take_work_ns()).sum()
    }

    /// Summed overhead counters across targets.
    pub fn overhead(&self) -> OverheadStats {
        let mut total = OverheadStats::default();
        for (_, c) in &self.ctxs {
            let o = c.overhead;
            total.total_checks += o.total_checks;
            total.max_checks_per_tick =
                total.max_checks_per_tick.max(o.max_checks_per_tick);
            total.nr_ticks = total.nr_ticks.max(o.nr_ticks);
            total.nr_aggregations += o.nr_aggregations;
            total.work_ns += o.work_ns;
        }
        total
    }

    /// Number of monitored targets.
    pub fn nr_targets(&self) -> usize {
        self.ctxs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::access::AccessBatch;
    use daos_mm::addr::AddrRange;
    use daos_mm::clock::ms;
    use daos_mm::machine::MachineProfile;
    use daos_mm::swap::SwapConfig;
    use daos_mm::vma::ThpMode;

    #[test]
    fn per_target_regions_and_attribution() {
        let mut sys =
            MemorySystem::new(MachineProfile::test_tiny(), SwapConfig::paper_zram(), 8);
        let p1 = sys.spawn();
        let p2 = sys.spawn();
        let r1 = sys.mmap(p1, 8 << 20, ThpMode::Never).unwrap();
        let r2 = sys.mmap(p2, 8 << 20, ThpMode::Never).unwrap();

        let attrs = MonitorAttrs::builder().max_nr_regions(50).build().unwrap();
        let mut mon = MultiMonitor::new(attrs, &[p1, p2], &sys, 0, 7);
        assert_eq!(mon.nr_targets(), 2);

        // p1 hammers its first MiB; p2 is completely idle.
        let hot1 = AddrRange::new(r1.start, r1.start + (1 << 20));
        let mut sink = Vec::new();
        for i in 1..=400u64 {
            sys.apply_access(p1, &AccessBatch::all(hot1, 4.0)).unwrap();
            mon.step(&mut sys, i * ms(5), &mut sink);
        }
        assert!(!sink.is_empty());

        // Attribution: p1's windows show heat; p2's show none.
        let heat = |pid: Pid| -> f64 {
            sink.iter()
                .filter(|t| t.pid == pid)
                .flat_map(|t| {
                    t.aggregation
                        .regions
                        .iter()
                        .map(|r| t.aggregation.freq_ratio(r) * r.range.len() as f64)
                        .collect::<Vec<_>>()
                })
                .sum()
        };
        assert!(heat(p1) > 100.0 * (heat(p2) + 1.0), "p1 {} vs p2 {}", heat(p1), heat(p2));

        // Both targets produced windows and the address spaces never mix.
        for t in &sink {
            for r in &t.aggregation.regions {
                let owner_range = if t.pid == p1 { r1 } else { r2 };
                // Regions live inside the target's spans (data or stack).
                assert!(
                    r.range.start >= owner_range.start || r.range.start >= (1 << 40),
                    "region {} outside target space",
                    r.range
                );
            }
        }
        assert!(mon.take_work_ns() > 0);
        assert!(mon.overhead().nr_aggregations >= 2);
    }
}
