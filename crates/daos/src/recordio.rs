//! Monitor-record (de)serialisation — the `rec` configuration's
//! record-file format, and the working-set-size report derived from it
//! (the user-space tooling around the paper's kernel interface).
//!
//! The format is line-oriented CSV so records can be re-plotted with any
//! tool: `at_ns,start,end,nr_accesses,age,max_nr_accesses,aggr_ns`.

use daos_mm::addr::AddrRange;
use daos_monitor::{Aggregation, MonitorRecord, RegionInfo};
use daos_util::json::{parse_lines, FromJson, JsonError, ToJson};

/// Header line of the record CSV format.
pub const RECORD_HEADER: &str = "at_ns,start,end,nr_accesses,age,max_nr_accesses,aggr_ns";

/// Why a record file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// A CSV line does not have exactly 7 comma-separated fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// How many fields were found.
        got: usize,
    },
    /// A CSV field failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A JSONL line is not a valid aggregation object.
    Json(JsonError),
}

impl core::fmt::Display for RecordError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecordError::FieldCount { line, got } => {
                write!(f, "line {line}: expected 7 fields, got {got}")
            }
            RecordError::BadNumber { line, token } => {
                write!(f, "line {line}: bad number '{token}'")
            }
            RecordError::Json(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RecordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecordError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonError> for RecordError {
    fn from(e: JsonError) -> Self {
        RecordError::Json(e)
    }
}

/// Serialise a record to CSV.
pub fn record_to_csv(record: &MonitorRecord) -> String {
    let mut out = String::with_capacity(64 * record.len() + 64);
    out.push_str(RECORD_HEADER);
    out.push('\n');
    for agg in &record.aggregations {
        for r in &agg.regions {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                agg.at,
                r.range.start,
                r.range.end,
                r.nr_accesses,
                r.age,
                agg.max_nr_accesses,
                agg.aggregation_interval,
            ));
        }
    }
    out
}

/// Parse a record back from CSV (inverse of [`record_to_csv`]).
pub fn record_from_csv(text: &str) -> Result<MonitorRecord, RecordError> {
    let mut record = MonitorRecord::new();
    let mut current: Option<Aggregation> = None;
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line == RECORD_HEADER {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(RecordError::FieldCount { line: ln + 1, got: fields.len() });
        }
        let parse = |i: usize| -> Result<u64, RecordError> {
            fields[i].parse::<u64>().map_err(|_| RecordError::BadNumber {
                line: ln + 1,
                token: fields[i].to_string(),
            })
        };
        let at = parse(0)?;
        let info = RegionInfo {
            range: AddrRange::new(parse(1)?, parse(2)?),
            nr_accesses: parse(3)? as u32,
            age: parse(4)? as u32,
        };
        let max_nr = parse(5)? as u32;
        let aggr = parse(6)?;
        match &mut current {
            Some(agg) if agg.at == at => agg.regions.push(info),
            _ => {
                if let Some(done) = current.take() {
                    record.push(done);
                }
                current = Some(Aggregation {
                    at,
                    regions: vec![info],
                    max_nr_accesses: max_nr,
                    aggregation_interval: aggr,
                });
            }
        }
    }
    if let Some(done) = current {
        record.push(done);
    }
    Ok(record)
}

/// Serialise a record as JSONL: one [`Aggregation`] object per line.
///
/// Unlike the CSV format, JSONL preserves empty aggregations and needs
/// no header; blank lines and `#` comments are ignored on read.
pub fn record_to_jsonl(record: &MonitorRecord) -> String {
    let mut out = String::with_capacity(128 * record.len() + 16);
    for agg in &record.aggregations {
        out.push_str(&agg.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

/// Parse a record back from JSONL (inverse of [`record_to_jsonl`]).
pub fn record_from_jsonl(text: &str) -> Result<MonitorRecord, RecordError> {
    let mut record = MonitorRecord::new();
    for v in parse_lines(text)? {
        record.push(Aggregation::from_json(&v)?);
    }
    Ok(record)
}

/// A working-set-size report (the tooling's `wss` view): the
/// distribution of per-window hot-byte estimates over the record.
#[derive(Debug, Clone, PartialEq)]
pub struct WssReport {
    /// Per-window working-set estimates, bytes, in time order.
    pub samples: Vec<u64>,
}

impl WssReport {
    /// Compute the report from a record.
    pub fn from_record(record: &MonitorRecord) -> WssReport {
        WssReport {
            samples: record.aggregations.iter().map(|a| a.hot_bytes_estimate()).collect(),
        }
    }

    /// The given percentile (0–100) of the WSS distribution.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Mean working-set size.
    pub fn mean(&self) -> u64 {
        if self.samples.is_empty() {
            0
        } else {
            (self.samples.iter().map(|&s| s as u128).sum::<u128>()
                / self.samples.len() as u128) as u64
        }
    }

    /// Render the damo-style percentile table.
    pub fn render(&self) -> String {
        let mut out = String::from("percentile   wss\n");
        for p in [0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            out.push_str(&format!("{:>9.0}% {:>8} KiB\n", p, self.percentile(p) >> 10));
        }
        out.push_str(&format!("{:>10} {:>8} KiB\n", "mean", self.mean() >> 10));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::clock::{ms, sec};

    fn sample_record() -> MonitorRecord {
        let mut rec = MonitorRecord::new();
        for t in 1..=5u64 {
            rec.push(Aggregation {
                at: sec(t),
                regions: vec![
                    RegionInfo {
                        range: AddrRange::new(0, 1 << 20),
                        nr_accesses: 20,
                        age: t as u32,
                    },
                    RegionInfo {
                        range: AddrRange::new(1 << 20, 4 << 20),
                        nr_accesses: 0,
                        age: 10,
                    },
                ],
                max_nr_accesses: 20,
                aggregation_interval: ms(100),
            });
        }
        rec
    }

    #[test]
    fn csv_roundtrip_is_lossless() {
        let rec = sample_record();
        let csv = record_to_csv(&rec);
        let back = record_from_csv(&csv).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn csv_parse_errors() {
        assert!(record_from_csv("1,2,3\n").is_err());
        assert!(record_from_csv("a,b,c,d,e,f,g\n").is_err());
        assert!(record_from_csv("").unwrap().is_empty());
        assert!(record_from_csv(RECORD_HEADER).unwrap().is_empty());
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let rec = sample_record();
        let jsonl = record_to_jsonl(&rec);
        assert_eq!(jsonl.lines().count(), 5);
        let back = record_from_jsonl(&jsonl).unwrap();
        assert_eq!(rec, back);
        // JSONL keeps empty aggregations, which CSV cannot represent.
        let mut rec = MonitorRecord::new();
        rec.push(Aggregation {
            at: sec(1),
            regions: vec![],
            max_nr_accesses: 0,
            aggregation_interval: ms(100),
        });
        let back = record_from_jsonl(&record_to_jsonl(&rec)).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn jsonl_parse_errors_and_comments() {
        assert!(record_from_jsonl("{\"not\": \"an aggregation\"}\n").is_err());
        assert!(record_from_jsonl("not json at all\n").is_err());
        assert!(record_from_jsonl("# comment only\n\n").unwrap().is_empty());
    }

    #[test]
    fn wss_report_percentiles() {
        let rec = sample_record();
        let wss = WssReport::from_record(&rec);
        assert_eq!(wss.samples.len(), 5);
        // Every window: 1 MiB at 100% + 3 MiB at 0% → 1 MiB.
        assert_eq!(wss.percentile(50.0), 1 << 20);
        assert_eq!(wss.mean(), 1 << 20);
        assert_eq!(wss.percentile(0.0), wss.percentile(100.0));
        let rendered = wss.render();
        assert!(rendered.contains("1024 KiB"));
    }

    #[test]
    fn wss_empty_record() {
        let wss = WssReport::from_record(&MonitorRecord::new());
        assert_eq!(wss.percentile(50.0), 0);
        assert_eq!(wss.mean(), 0);
    }
}
