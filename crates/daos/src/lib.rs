//! # daos — Data Access-aware Operating System (top-level API)
//!
//! The integration crate of the DAOS reproduction: it wires the
//! [`daos_monitor`] Data Access Monitor, the [`daos_schemes`] Memory
//! Management Schemes Engine and the [`daos_tuner`] Auto-tuning Runtime
//! on top of the [`daos_mm`] simulated memory substrate, and provides:
//!
//! * the six evaluation configurations (baseline / rec / prec / thp /
//!   ethp / prcl) as [`config::RunConfig`];
//! * the unified [`Session`] entry point executing one workload under
//!   one configuration on one machine profile — or, with a
//!   [`FleetSpec`], replicated across thousands of processes under the
//!   sharded work-stealing [`fleet`] engine (the [`runner`]'s
//!   `run`/`run_observed` remain as deprecated shims);
//! * Fig. 6-style access-pattern [`heatmap`]s;
//! * the normalised performance / memory-efficiency / score [`metrics`]
//!   of Figures 4, 7 and 8.
//!
//! ```no_run
//! use daos::{Normalized, RunConfig, Session};
//! use daos_mm::MachineProfile;
//! use daos_workloads::by_path;
//!
//! let machine = MachineProfile::i3_metal();
//! let spec = by_path("parsec3/freqmine").unwrap();
//! let base = Session::new(&machine, &RunConfig::baseline(), &spec)
//!     .seed(42)
//!     .execute()
//!     .unwrap()
//!     .into_single();
//! let prcl = Session::new(&machine, &RunConfig::prcl(), &spec)
//!     .seed(42)
//!     .execute()
//!     .unwrap()
//!     .into_single();
//! let n = Normalized::of(&base, &prcl);
//! println!("memory saving: {:.1}%", n.memory_saving_pct());
//! ```

pub mod config;
pub mod error;
pub mod fleet;
pub mod heatmap;
pub mod metrics;
pub mod multi;
pub mod recordio;
pub mod runner;
pub mod session;

pub use config::{MonitorKind, RunConfig, RunConfigBuilder};
pub use error::DaosError;
pub use fleet::{
    FleetEngine, FleetObserver, FleetProgress, FleetSpec, FleetSummary, TenantStats,
};
pub use heatmap::{biggest_active_span, Heatmap};
pub use metrics::{score_inputs, score_vs_baseline, Normalized};
pub use multi::{MultiMonitor, TargetAggregation};
pub use recordio::{
    record_from_csv, record_from_jsonl, record_to_csv, record_to_jsonl, RecordError, WssReport,
    RECORD_HEADER,
};
pub use runner::{run, run_observed, RunObserver, RunProgress, RunResult};
pub use session::{Session, SessionResult};
