//! The sharded, work-stealing fleet engine: one monitoring plane over
//! thousands of processes.
//!
//! The paper's north star is "heavy traffic from millions of users" —
//! one data-access-aware core driving many workloads cheaply. A
//! [`FleetSpec`] partitions `nr_processes` identical workloads into
//! **shards** of `procs_per_shard`, each shard a self-contained
//! [`MemorySystem`] with its own deterministic clock and seed stream.
//! Every simulation tick, each shard advances every resident process by
//! one epoch through the *same three phase functions the single-process
//! runner uses* ([`crate::runner`]): a fleet of one process executes the
//! exact instruction sequence of [`crate::run`], which the N=1
//! equivalence test pins.
//!
//! Shard ticks are distributed over the workspace worker pool
//! ([`daos_util::pool::WorkerPool`], a work-stealing scheduler), with a
//! barrier per tick so results never depend on worker count — only
//! `steals` in the summary varies. Single-shard (or single-worker)
//! fleets run inline on the caller thread, so a thread-local trace
//! collector observes them exactly like a single run.
//!
//! Monitoring cost stays **sub-linear in fleet size** through a global
//! region budget: each process's `max_nr_regions` is
//! `clamp(region_budget / nr_processes, min_nr_regions,
//! max_nr_regions)`. DAMON's overhead is bounded by the region count,
//! not the footprint, so capping total regions caps total overhead —
//! per-process overhead *falls* as the fleet grows (the
//! `overhead_per_process_ns()` line in the summary).

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use daos_mm::access::AccessBatch;
use daos_mm::clock::Ns;
use daos_mm::error::{MmError, MmResult};
use daos_mm::machine::MachineProfile;
use daos_mm::process::Pid;
use daos_mm::system::MemorySystem;
use daos_monitor::{Aggregation, MonitorAttrs, MonitorRecord};
use daos_schemes::{SchemeTarget, SchemesEngine};
use daos_trace::Collector;
use daos_util::pool::WorkerPool;
use daos_workloads::{instantiate, SyntheticWorkload, Workload, WorkloadSpec};

use crate::config::{MonitorKind, RunConfig};
use crate::runner::{
    build_monitor, khugepaged_phase, monitor_phase, workload_phase, AnyMonitor, RunResult,
    KHUGEPAGED_INTERVAL,
};

/// Recover a mutex guard from a poisoned lock: shard state stays
/// consistent across a worker panic because every tick either completes
/// or its error propagates before results are read.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How to scale one run into a fleet. Built with
/// [`FleetSpec::new`]`(nr_processes)` plus chained setters;
/// [`crate::Session::fleet`] consumes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// Total worker processes (clamped to ≥ 1).
    pub nr_processes: usize,
    /// Processes per shard (per simulated machine; clamped to ≥ 1).
    pub procs_per_shard: usize,
    /// Worker threads ticking shards; 0 = auto (one per CPU, capped).
    pub nr_workers: usize,
    /// Tenant label families published per fleet (clamped to ≥ 1);
    /// process `p` belongs to tenant `p % nr_tenants`, named `t<i>`.
    pub nr_tenants: usize,
    /// Global monitoring-region budget across the whole fleet;
    /// 0 = auto (64 × the config's `max_nr_regions`).
    pub region_budget: usize,
    /// Per-shard trace collectors with this ring capacity, enabling the
    /// per-process dropped-event accounting in the summary.
    pub trace_ring: Option<usize>,
}

impl FleetSpec {
    /// A fleet of `nr_processes` with the defaults: 32 processes per
    /// shard, auto workers, one tenant, auto region budget, no tracing.
    pub fn new(nr_processes: usize) -> Self {
        Self {
            nr_processes: nr_processes.max(1),
            procs_per_shard: 32,
            nr_workers: 0,
            nr_tenants: 1,
            region_budget: 0,
            trace_ring: None,
        }
    }

    /// Processes per shard (one shard = one simulated machine).
    pub fn shard_size(mut self, n: usize) -> Self {
        self.procs_per_shard = n.max(1);
        self
    }

    /// Worker threads (0 = auto).
    pub fn workers(mut self, n: usize) -> Self {
        self.nr_workers = n;
        self
    }

    /// Tenant count for the per-tenant label families.
    pub fn tenants(mut self, n: usize) -> Self {
        self.nr_tenants = n.max(1);
        self
    }

    /// Global region budget (0 = auto).
    pub fn budget(mut self, regions: usize) -> Self {
        self.region_budget = regions;
        self
    }

    /// Enable per-shard trace collectors with ring capacity `cap`.
    pub fn trace_ring(mut self, cap: usize) -> Self {
        self.trace_ring = Some(cap);
        self
    }

    /// Number of shards this spec partitions into.
    pub fn nr_shards(&self) -> usize {
        self.nr_processes.div_ceil(self.procs_per_shard)
    }

    /// The tenant index of global process `p`.
    pub fn tenant_of(&self, p: usize) -> usize {
        p % self.nr_tenants
    }

    /// Per-process monitoring attributes under the global region budget:
    /// `max_nr_regions` becomes `clamp(budget / nr_processes,
    /// min_nr_regions, max_nr_regions)`. With the auto budget
    /// (64 × `max_nr_regions`) a fleet of ≤ 64 processes runs unchanged
    /// — in particular N=1, preserving single-run equivalence.
    pub fn effective_attrs(&self, base: &MonitorAttrs) -> MonitorAttrs {
        let budget = if self.region_budget == 0 {
            64 * base.max_nr_regions
        } else {
            self.region_budget
        };
        let per = budget / self.nr_processes.max(1);
        let mut attrs = *base;
        attrs.max_nr_regions = per.clamp(base.min_nr_regions, base.max_nr_regions);
        attrs
    }
}

/// Per-tenant aggregates, published as `tenant.<i>.*` label families.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name (`t0`, `t1`, ...).
    pub name: String,
    /// Processes in this tenant.
    pub nr_processes: usize,
    /// Current total resident bytes.
    pub total_rss: u64,
    /// Sum of per-process peak RSS, bytes.
    pub peak_rss: u64,
    /// Total monitoring/scheme interference charged, ns.
    pub interference_ns: Ns,
    /// Total major faults.
    pub major_faults: u64,
    /// Total pages swapped out.
    pub swapouts: u64,
}

/// Live fleet progress handed to a [`FleetObserver`] after every tick.
#[derive(Debug, Clone)]
pub struct FleetProgress {
    /// Tick just completed (0-based).
    pub tick: u64,
    /// Total ticks the fleet will execute.
    pub nr_ticks: u64,
    /// Virtual clock of the furthest shard.
    pub now_ns: Ns,
    /// Total processes.
    pub nr_processes: usize,
    /// Total monitor CPU work so far, ns.
    pub monitor_work_ns: Ns,
    /// Total trace events dropped so far (all shards).
    pub dropped_events: u64,
    /// Per-tenant aggregates.
    pub tenants: Vec<TenantStats>,
}

/// Hook into a live fleet: called once per tick, on the driver thread.
/// Throttle internally if publishing is expensive.
pub trait FleetObserver {
    /// One fleet tick (one epoch across every process) finished.
    fn on_tick(&mut self, progress: &FleetProgress);
}

/// Everything a fleet run produced, beyond the per-process
/// [`RunResult`]s. `render()` formats the human-readable summary the
/// `daos fleet` subcommand prints.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Total worker processes.
    pub nr_processes: usize,
    /// Shards (simulated machines).
    pub nr_shards: usize,
    /// Worker threads that ticked the shards (1 = inline).
    pub nr_workers: usize,
    /// Tenant label families.
    pub nr_tenants: usize,
    /// Ticks executed (= epochs per process).
    pub ticks: u64,
    /// Virtual runtime of the slowest shard.
    pub runtime_ns: Ns,
    /// Sum of time-weighted average RSS across processes.
    pub total_avg_rss: u64,
    /// Sum of peak RSS across processes.
    pub total_peak_rss: u64,
    /// Total monitor CPU work across all monitoring contexts, ns.
    pub monitor_work_ns: Ns,
    /// Total access checks performed by all monitors.
    pub monitor_total_checks: u64,
    /// The per-process `max_nr_regions` after budget division.
    pub effective_max_regions: usize,
    /// Trace events dropped per process (global process index; empty
    /// without `trace_ring`). Per-process counts, not a deduplicated
    /// once-per-run warning: every process's loss is visible.
    pub dropped_events: Vec<u64>,
    /// Work-stealing steals across the run (0 when inline; varies with
    /// thread timing — excluded from determinism comparisons).
    pub steals: u64,
    /// Per-tenant aggregates at end of run.
    pub tenants: Vec<TenantStats>,
}

impl FleetSummary {
    /// Monitor CPU work per process — the sub-linearity headline: with
    /// the region budget active this *falls* as the fleet grows.
    pub fn overhead_per_process_ns(&self) -> Ns {
        self.monitor_work_ns / self.nr_processes.max(1) as u64
    }

    /// Total dropped trace events across the fleet.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_events.iter().sum()
    }

    /// Human-readable multi-line summary (the library never prints; the
    /// CLI does).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet    {} procs in {} shards ({} max/shard) on {} worker{}, {} tenant{}\n",
            self.nr_processes,
            self.nr_shards,
            self.nr_processes.div_ceil(self.nr_shards.max(1)),
            self.nr_workers,
            if self.nr_workers == 1 { "" } else { "s" },
            self.nr_tenants,
            if self.nr_tenants == 1 { "" } else { "s" },
        ));
        out.push_str(&format!(
            "time     {} ticks, {:.3} s virtual runtime\n",
            self.ticks,
            self.runtime_ns as f64 / 1e9
        ));
        out.push_str(&format!(
            "memory   avg rss {}, peak rss {}\n",
            fmt_bytes(self.total_avg_rss),
            fmt_bytes(self.total_peak_rss)
        ));
        out.push_str(&format!(
            "monitor  {:.3} ms work, {} checks, {} max regions/proc, {} ns/proc\n",
            self.monitor_work_ns as f64 / 1e6,
            self.monitor_total_checks,
            self.effective_max_regions,
            self.overhead_per_process_ns()
        ));
        if self.steals > 0 {
            out.push_str(&format!("pool     {} steals\n", self.steals));
        }
        for t in &self.tenants {
            out.push_str(&format!(
                "tenant   {}: {} procs, rss {}, peak {}, {} majfaults, {} swapouts\n",
                t.name,
                t.nr_processes,
                fmt_bytes(t.total_rss),
                fmt_bytes(t.peak_rss),
                t.major_faults,
                t.swapouts
            ));
        }
        if !self.dropped_events.is_empty() {
            let lossy: Vec<(usize, u64)> = self
                .dropped_events
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d > 0)
                .map(|(p, &d)| (p, d))
                .collect();
            if lossy.is_empty() {
                out.push_str("trace    no ring overflows\n");
            } else {
                out.push_str(&format!(
                    "trace    {} events dropped across {} procs:",
                    self.total_dropped(),
                    lossy.len()
                ));
                for (i, (p, d)) in lossy.iter().enumerate() {
                    if i == 16 {
                        out.push_str(&format!(" … +{} more", lossy.len() - 16));
                        break;
                    }
                    out.push_str(&format!(" p{p}:{d}"));
                }
                out.push('\n');
            }
        }
        out
    }
}

fn fmt_bytes(b: u64) -> String {
    const UNITS: [(&str, u64); 4] =
        [("GiB", 1 << 30), ("MiB", 1 << 20), ("KiB", 1 << 10), ("B", 1)];
    for (name, scale) in UNITS {
        if b >= scale {
            return format!("{:.1} {name}", b as f64 / scale as f64);
        }
    }
    "0 B".to_string()
}

/// One worker process resident in a shard.
struct Proc {
    pid: Pid,
    global_idx: usize,
    wl: SyntheticWorkload,
    /// Per-process monitor (vaddr configurations).
    monitor: Option<AnyMonitor>,
    /// Per-process schemes engine (vaddr configurations).
    engine: Option<SchemesEngine>,
    record: Option<MonitorRecord>,
    next_khugepaged: Ns,
    dropped_events: u64,
}

/// One shard: a self-contained simulated machine hosting a slice of the
/// fleet. All per-tick mutation is confined here, so shards tick in
/// parallel with no shared state beyond the task queue.
struct Shard {
    sys: MemorySystem,
    procs: Vec<Proc>,
    /// Shard-wide monitor/engine/record (paddr configurations monitor
    /// the whole machine at once — the batched-application path).
    shard_monitor: Option<AnyMonitor>,
    shard_engine: Option<SchemesEngine>,
    shard_record: Option<MonitorRecord>,
    sink: Vec<Aggregation>,
    batches: Vec<AccessBatch>,
    scratch_window: Option<Aggregation>,
    cpu_scale: f64,
    khugepaged: bool,
    paddr: bool,
    /// Shard-owned trace collector (`FleetSpec::trace_ring`), installed
    /// thread-locally for the duration of each tick.
    collector: Option<Collector>,
}

/// Current dropped-event count of the thread's installed collector.
fn dropped_now(tracing: bool) -> u64 {
    if tracing {
        daos_trace::ring_status().map_or(0, |(_, dropped, _)| dropped)
    } else {
        0
    }
}

impl Shard {
    fn build(
        machine: &MachineProfile,
        config: &RunConfig,
        spec: &WorkloadSpec,
        fleet: &FleetSpec,
        seed: u64,
        shard_idx: usize,
        proc_range: std::ops::Range<usize>,
    ) -> MmResult<Shard> {
        let shard_seed = seed ^ ((shard_idx as u64) << 21);
        let mut sys = MemorySystem::new(machine.clone(), config.swap, shard_seed);
        let attrs = fleet.effective_attrs(&config.attrs);
        let paddr = config.monitor == Some(MonitorKind::Paddr);
        let mut procs = Vec::with_capacity(proc_range.len());
        for p in proc_range {
            let wl_seed = seed ^ ((p as u64) << 17);
            let mut wl = instantiate(*spec, wl_seed);
            let pid = wl.setup(&mut sys, config.thp)?;
            let monitor = if paddr {
                None
            } else {
                build_monitor(config.monitor, attrs, &sys, pid, wl_seed)
            };
            let engine = (!paddr && !config.schemes.is_empty()).then(|| {
                SchemesEngine::new(SchemeTarget::Virtual(pid), config.schemes.clone())
            });
            let record = (!paddr && config.record).then(MonitorRecord::new);
            procs.push(Proc {
                pid,
                global_idx: p,
                wl,
                monitor,
                engine,
                record,
                next_khugepaged: KHUGEPAGED_INTERVAL,
                dropped_events: 0,
            });
        }
        let lead = procs.first().map(|p| p.pid);
        let shard_monitor = match lead {
            Some(pid) if paddr => build_monitor(config.monitor, attrs, &sys, pid, shard_seed),
            _ => None,
        };
        let shard_engine = (paddr && !config.schemes.is_empty())
            .then(|| SchemesEngine::new(SchemeTarget::Physical, config.schemes.clone()));
        let shard_record = (paddr && config.record).then(MonitorRecord::new);
        // Ring capacity clamped to ≥ 1 so the builder cannot fail.
        let collector = fleet
            .trace_ring
            .and_then(|cap| Collector::builder().ring_capacity(cap.max(1)).build().ok());
        Ok(Shard {
            sys,
            procs,
            shard_monitor,
            shard_engine,
            shard_record,
            sink: Vec::new(),
            batches: Vec::new(),
            scratch_window: None,
            cpu_scale: 3.0 / machine.cpu_ghz,
            khugepaged: config.khugepaged,
            paddr,
            collector,
        })
    }

    /// Advance every resident process by one epoch. With a shard
    /// collector, install it thread-locally for the tick (skipped if the
    /// thread already carries one — e.g. a caller-installed collector on
    /// the inline path keeps precedence) and attribute ring-drop deltas
    /// to the process whose phases produced them.
    fn tick(&mut self, idx: u64) -> MmResult<()> {
        let mut tracing = false;
        if self.collector.is_some() && daos_trace::with_collector(|_| ()).is_none() {
            if let Some(col) = self.collector.take() {
                tracing = daos_trace::install(col).is_ok();
            }
        }
        let result = self.tick_inner(idx, tracing);
        if tracing {
            self.collector = daos_trace::take();
        }
        result
    }

    fn tick_inner(&mut self, idx: u64, tracing: bool) -> MmResult<()> {
        if self.paddr {
            // All workloads run, then the shard-wide monitor sweeps the
            // whole machine once and the engine applies schemes across
            // every process in one batch.
            for p in &mut self.procs {
                let before = dropped_now(tracing);
                workload_phase(
                    &mut self.sys,
                    p.pid,
                    &mut p.wl,
                    idx,
                    self.cpu_scale,
                    &mut self.batches,
                )?;
                p.dropped_events += dropped_now(tracing).saturating_sub(before);
            }
            if let Some(lead) = self.procs.first().map(|p| p.pid) {
                monitor_phase(
                    &mut self.sys,
                    lead,
                    &mut self.shard_monitor,
                    &mut self.shard_engine,
                    &mut self.shard_record,
                    &mut self.sink,
                    &mut self.scratch_window,
                    false,
                );
            }
            for p in &mut self.procs {
                khugepaged_phase(&mut self.sys, p.pid, self.khugepaged, &mut p.next_khugepaged)?;
            }
        } else {
            // Per-process pipeline, identical to the single runner's
            // epoch sequence — the N=1 equivalence hinge.
            for p in &mut self.procs {
                let before = dropped_now(tracing);
                workload_phase(
                    &mut self.sys,
                    p.pid,
                    &mut p.wl,
                    idx,
                    self.cpu_scale,
                    &mut self.batches,
                )?;
                monitor_phase(
                    &mut self.sys,
                    p.pid,
                    &mut p.monitor,
                    &mut p.engine,
                    &mut p.record,
                    &mut self.sink,
                    &mut self.scratch_window,
                    false,
                );
                khugepaged_phase(&mut self.sys, p.pid, self.khugepaged, &mut p.next_khugepaged)?;
                p.dropped_events += dropped_now(tracing).saturating_sub(before);
            }
        }
        Ok(())
    }

    /// Total monitor CPU work accumulated in this shard, ns, plus total
    /// access checks.
    fn monitor_totals(&self) -> (Ns, u64) {
        let mut work = 0;
        let mut checks = 0;
        for m in self
            .procs
            .iter()
            .filter_map(|p| p.monitor.as_ref())
            .chain(self.shard_monitor.as_ref())
        {
            let o = m.overhead();
            work += o.work_ns;
            checks += o.total_checks;
        }
        (work, checks)
    }
}

/// The fleet engine: builds the shards, ticks them (inline or over the
/// worker pool) and assembles per-process [`RunResult`]s plus the
/// [`FleetSummary`]. Normally driven via [`crate::Session`]; the bench
/// harness drives [`tick`](Self::tick) directly to time it.
pub struct FleetEngine {
    shards: Vec<Arc<Mutex<Shard>>>,
    pool: Option<WorkerPool>,
    spec: FleetSpec,
    config_name: String,
    workload_name: String,
    machine_name: String,
    nr_ticks: u64,
    tick: u64,
    effective_max_regions: usize,
}

impl FleetEngine {
    /// Build the fleet: partition processes into shards and set up every
    /// workload. Shard construction runs over the pool when one is
    /// warranted (more than one shard and more than one worker).
    pub fn new(
        machine: &MachineProfile,
        config: &RunConfig,
        spec: &WorkloadSpec,
        fleet: FleetSpec,
        seed: u64,
    ) -> MmResult<FleetEngine> {
        let nr_shards = fleet.nr_shards();
        let pool = (nr_shards > 1 && fleet.nr_workers != 1)
            .then(|| WorkerPool::new(fleet.nr_workers));
        let ranges: Vec<(usize, std::ops::Range<usize>)> = (0..nr_shards)
            .map(|s| {
                let lo = s * fleet.procs_per_shard;
                let hi = ((s + 1) * fleet.procs_per_shard).min(fleet.nr_processes);
                (s, lo..hi)
            })
            .collect();
        let shards: Vec<MmResult<Shard>> = match &pool {
            Some(pool) => {
                let tasks: Vec<_> = ranges
                    .into_iter()
                    .map(|(s, range)| {
                        let machine = machine.clone();
                        let config = config.clone();
                        let spec = *spec;
                        let fleet = fleet.clone();
                        move || Shard::build(&machine, &config, &spec, &fleet, seed, s, range)
                    })
                    .collect();
                pool.run_batch(tasks)
            }
            None => ranges
                .into_iter()
                .map(|(s, range)| Shard::build(machine, config, spec, &fleet, seed, s, range))
                .collect(),
        };
        let mut built = Vec::with_capacity(nr_shards);
        for shard in shards {
            built.push(Arc::new(Mutex::new(shard?)));
        }
        let effective_max_regions = fleet.effective_attrs(&config.attrs).max_nr_regions;
        let nr_ticks = spec.nr_epochs;
        let workload_name = built
            .first()
            .and_then(|s| lock(s).procs.first().map(|p| p.wl.name()))
            .unwrap_or_else(|| spec.name.to_string());
        Ok(FleetEngine {
            shards: built,
            pool,
            spec: fleet,
            config_name: config.name.clone(),
            workload_name,
            machine_name: machine.name.clone(),
            nr_ticks,
            tick: 0,
            effective_max_regions,
        })
    }

    /// The fleet spec this engine runs.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Display name of the replicated workload.
    pub fn workload_name(&self) -> &str {
        &self.workload_name
    }

    /// Ticks the full run will execute (the workload's epoch count).
    pub fn nr_ticks(&self) -> u64 {
        self.nr_ticks
    }

    /// Advance every process in the fleet by one epoch. With a pool,
    /// shard ticks are distributed work-stealing with a barrier at the
    /// end; otherwise they run inline on the caller thread (which keeps
    /// a caller-installed trace collector observing a 1-shard fleet).
    pub fn tick(&mut self) -> MmResult<()> {
        let idx = self.tick;
        match &self.pool {
            Some(pool) => {
                let tasks: Vec<_> = self
                    .shards
                    .iter()
                    .map(|sh| {
                        let sh = Arc::clone(sh);
                        move || lock(&sh).tick(idx)
                    })
                    .collect();
                for r in pool.run_batch(tasks) {
                    r?;
                }
            }
            None => {
                for sh in &self.shards {
                    lock(sh).tick(idx)?;
                }
            }
        }
        self.tick += 1;
        Ok(())
    }

    /// Run all remaining ticks, reporting to `observer` after each.
    pub fn run(&mut self, mut observer: Option<&mut dyn FleetObserver>) -> MmResult<()> {
        while self.tick < self.nr_ticks {
            self.tick()?;
            if let Some(obs) = observer.as_deref_mut() {
                let progress = self.progress();
                obs.on_tick(&progress);
            }
        }
        Ok(())
    }

    /// Aggregate the current fleet state (locks every shard — cheap per
    /// shard, linear in fleet size; observers throttle upstream).
    pub fn progress(&self) -> FleetProgress {
        let mut tenants = self.empty_tenants();
        let mut now_ns = 0;
        let mut monitor_work_ns = 0;
        let mut dropped = 0;
        for sh in &self.shards {
            let sh = lock(sh);
            now_ns = now_ns.max(sh.sys.now());
            monitor_work_ns += sh.monitor_totals().0;
            for p in &sh.procs {
                dropped += p.dropped_events;
                let t = &mut tenants[self.spec.tenant_of(p.global_idx)];
                t.nr_processes += 1;
                t.total_rss += sh.sys.rss_bytes(p.pid);
                if let Some(st) = sh.sys.proc_stats(p.pid) {
                    t.peak_rss += st.peak_rss_bytes;
                    t.interference_ns += st.monitor_interference_ns;
                    t.major_faults += st.major_faults;
                    t.swapouts += st.swapouts;
                }
            }
        }
        FleetProgress {
            tick: self.tick.saturating_sub(1),
            nr_ticks: self.nr_ticks,
            now_ns,
            nr_processes: self.spec.nr_processes,
            monitor_work_ns,
            dropped_events: dropped,
            tenants,
        }
    }

    fn empty_tenants(&self) -> Vec<TenantStats> {
        (0..self.spec.nr_tenants)
            .map(|i| TenantStats { name: format!("t{i}"), ..TenantStats::default() })
            .collect()
    }

    /// Consume the engine: per-process [`RunResult`]s (in global process
    /// order) plus the fleet summary. Shard-level state (kstats, paddr
    /// monitor/engine/record) is attributed to the shard's first
    /// process, which at one process per fleet is *the* process — the
    /// equivalence pin.
    pub fn finish(self) -> MmResult<(Vec<RunResult>, FleetSummary)> {
        let mut runs = Vec::with_capacity(self.spec.nr_processes);
        let mut tenants = self.empty_tenants();
        let mut runtime_ns = 0;
        let mut monitor_work_ns = 0;
        let mut monitor_total_checks = 0;
        let mut total_avg_rss = 0;
        let mut total_peak_rss = 0;
        let mut dropped_events = self
            .spec
            .trace_ring
            .map(|_| vec![0u64; self.spec.nr_processes])
            .unwrap_or_default();
        for sh in &self.shards {
            let mut sh = lock(sh);
            let shard_runtime = sh.sys.now();
            runtime_ns = runtime_ns.max(shard_runtime);
            let (work, checks) = sh.monitor_totals();
            monitor_work_ns += work;
            monitor_total_checks += checks;
            let kstats = sh.sys.kstats;
            let shard_scheme_stats = sh
                .shard_engine
                .take()
                .map(|e| e.stats().to_vec())
                .unwrap_or_default();
            let mut shard_record = sh.shard_record.take();
            let shard_overhead = sh.shard_monitor.as_ref().map(|m| m.overhead());
            let Shard { ref sys, ref mut procs, .. } = *sh;
            for (i, p) in procs.iter_mut().enumerate() {
                let stats =
                    *sys.proc_stats(p.pid).ok_or(MmError::NoSuchProcess(p.pid))?;
                let overhead =
                    p.monitor.as_ref().map(|m| m.overhead()).or(if i == 0 {
                        shard_overhead
                    } else {
                        None
                    });
                let scheme_stats = match p.engine.take() {
                    Some(e) => e.stats().to_vec(),
                    None if i == 0 => shard_scheme_stats.clone(),
                    None => Vec::new(),
                };
                let record =
                    p.record.take().or(if i == 0 { shard_record.take() } else { None });
                let avg_rss = stats.avg_rss_bytes(shard_runtime);
                total_avg_rss += avg_rss;
                total_peak_rss += stats.peak_rss_bytes;
                if let Some(d) = dropped_events.get_mut(p.global_idx) {
                    *d = p.dropped_events;
                }
                let t = &mut tenants[self.spec.tenant_of(p.global_idx)];
                t.nr_processes += 1;
                t.total_rss += sys.rss_bytes(p.pid);
                t.peak_rss += stats.peak_rss_bytes;
                t.interference_ns += stats.monitor_interference_ns;
                t.major_faults += stats.major_faults;
                t.swapouts += stats.swapouts;
                runs.push(RunResult {
                    config: self.config_name.clone(),
                    workload: p.wl.name(),
                    machine: self.machine_name.clone(),
                    runtime_ns: shard_runtime,
                    avg_rss,
                    peak_rss: stats.peak_rss_bytes,
                    stats,
                    kstats,
                    record,
                    overhead,
                    scheme_stats,
                });
            }
        }
        let nr_workers = self.pool.as_ref().map_or(1, |p| p.nr_workers());
        let steals = self.pool.as_ref().map_or(0, |p| p.stats().steals);
        let summary = FleetSummary {
            nr_processes: self.spec.nr_processes,
            nr_shards: self.shards.len(),
            nr_workers,
            nr_tenants: self.spec.nr_tenants,
            ticks: self.tick,
            runtime_ns,
            total_avg_rss,
            total_peak_rss,
            monitor_work_ns,
            monitor_total_checks,
            effective_max_regions: self.effective_max_regions,
            dropped_events,
            steals,
            tenants,
        };
        Ok((runs, summary))
    }
}
