//! Access-pattern heatmaps (Fig. 6): time on the x-axis, address on the
//! y-axis, access frequency as intensity — rendered from a
//! [`MonitorRecord`].

use daos_mm::addr::AddrRange;
use daos_mm::clock::Ns;
use daos_monitor::MonitorRecord;

/// A rasterised heatmap.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Number of time bins (columns).
    pub nr_cols: usize,
    /// Number of address bins (rows; row 0 = lowest address).
    pub nr_rows: usize,
    /// Time span covered.
    pub time_span: (Ns, Ns),
    /// Address span covered.
    pub addr_span: AddrRange,
    /// Access-frequency ratio per cell, row-major, 0.0..=1.0.
    pub cells: Vec<f64>,
}

impl Heatmap {
    /// Rasterise a record into `nr_cols × nr_rows` cells over the given
    /// address span (pass [`biggest_active_span`] output to skip the
    /// address-space gaps, as §4.1 does).
    pub fn from_record(
        record: &MonitorRecord,
        addr_span: AddrRange,
        nr_cols: usize,
        nr_rows: usize,
    ) -> Option<Heatmap> {
        let (t0, t1) = record.time_span()?;
        if addr_span.is_empty() || nr_cols == 0 || nr_rows == 0 {
            return None;
        }
        let mut cells = vec![0.0f64; nr_cols * nr_rows];
        let mut weights = vec![0.0f64; nr_cols * nr_rows];
        let t_len = (t1 - t0).max(1) as f64;
        let a_len = addr_span.len() as f64;
        for agg in &record.aggregations {
            let col = (((agg.at - t0) as f64 / t_len) * (nr_cols - 1).max(1) as f64) as usize;
            let col = col.min(nr_cols - 1);
            for r in &agg.regions {
                let Some(isect) = r.range.intersect(&addr_span) else { continue };
                let freq = agg.freq_ratio(r);
                let row_lo =
                    (((isect.start - addr_span.start) as f64 / a_len) * nr_rows as f64) as usize;
                let row_hi = ((((isect.end - addr_span.start) as f64 / a_len)
                    * nr_rows as f64)
                    .ceil() as usize)
                    .min(nr_rows);
                for row in row_lo..row_hi.max(row_lo + 1).min(nr_rows) {
                    let idx = row * nr_cols + col;
                    cells[idx] += freq * isect.len() as f64;
                    weights[idx] += isect.len() as f64;
                }
            }
        }
        for (c, w) in cells.iter_mut().zip(&weights) {
            if *w > 0.0 {
                *c /= *w;
            }
        }
        Some(Heatmap { nr_cols, nr_rows, time_span: (t0, t1), addr_span, cells })
    }

    /// Cell accessor (row 0 = lowest address).
    pub fn cell(&self, row: usize, col: usize) -> f64 {
        self.cells[row * self.nr_cols + col]
    }

    /// Mean intensity of a rectangular region of the map (fractions of
    /// the axes) — convenient for asserting "the bottom quarter is hot".
    pub fn mean_intensity(&self, rows: core::ops::Range<f64>, cols: core::ops::Range<f64>) -> f64 {
        let r0 = (rows.start * self.nr_rows as f64) as usize;
        let r1 = ((rows.end * self.nr_rows as f64) as usize).min(self.nr_rows);
        let c0 = (cols.start * self.nr_cols as f64) as usize;
        let c1 = ((cols.end * self.nr_cols as f64) as usize).min(self.nr_cols);
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in r0..r1 {
            for c in c0..c1 {
                sum += self.cell(r, c);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Render as ASCII art (top row = highest address, like Fig. 6).
    pub fn render_ascii(&self) -> String {
        const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let mut out = String::with_capacity((self.nr_cols + 1) * self.nr_rows);
        for row in (0..self.nr_rows).rev() {
            for col in 0..self.nr_cols {
                let v = self.cell(row, col).clamp(0.0, 1.0);
                let idx = (v * (SHADES.len() - 1) as f64).round() as usize;
                out.push(SHADES[idx]);
            }
            out.push('\n');
        }
        out
    }

    /// Serialise as CSV: `time_s,addr_mib,intensity` triples (gnuplot-
    /// friendly, like the paper's plotting pipeline).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,addr_mib,intensity\n");
        let (t0, t1) = self.time_span;
        for row in 0..self.nr_rows {
            for col in 0..self.nr_cols {
                let t = t0 as f64
                    + (t1 - t0) as f64 * col as f64 / (self.nr_cols - 1).max(1) as f64;
                let a = self.addr_span.start as f64
                    + self.addr_span.len() as f64 * row as f64 / self.nr_rows as f64;
                out.push_str(&format!(
                    "{:.2},{:.2},{:.4}\n",
                    t / 1e9,
                    a / (1 << 20) as f64,
                    self.cell(row, col)
                ));
            }
        }
        out
    }
}

/// The biggest actively-accessed contiguous span of a record — the
/// paper's Fig. 6 workaround for the stack/heap/mmap gaps: "we find and
/// visualize the biggest subspace of each workload that shows active
/// access patterns".
pub fn biggest_active_span(record: &MonitorRecord) -> Option<AddrRange> {
    // Collect spans of regions that ever showed accesses, then merge
    // adjacent/overlapping ones and pick the widest.
    let mut active: Vec<AddrRange> = Vec::new();
    for agg in &record.aggregations {
        for r in &agg.regions {
            if r.nr_accesses > 0 {
                active.push(r.range);
            }
        }
    }
    if active.is_empty() {
        return record.address_span();
    }
    active.sort_by_key(|r| r.start);
    let mut merged: Vec<AddrRange> = Vec::new();
    for r in active {
        match merged.last_mut() {
            // Bridge gaps of less than 1/8th of the accumulated span —
            // sampled regions are patchy.
            Some(last) if r.start <= last.end + last.len() / 8 => {
                last.end = last.end.max(r.end);
            }
            _ => merged.push(r),
        }
    }
    merged.into_iter().max_by_key(|r| r.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::clock::sec;
    use daos_monitor::{Aggregation, RegionInfo};

    fn record_hot_low_half() -> MonitorRecord {
        let mut rec = MonitorRecord::new();
        for i in 0..10u64 {
            rec.push(Aggregation {
                at: sec(i),
                regions: vec![
                    RegionInfo {
                        range: AddrRange::new(0, 1 << 20),
                        nr_accesses: 18,
                        age: 0,
                    },
                    RegionInfo {
                        range: AddrRange::new(1 << 20, 2 << 20),
                        nr_accesses: 0,
                        age: 5,
                    },
                ],
                max_nr_accesses: 20,
                aggregation_interval: sec(1),
            });
        }
        rec
    }

    #[test]
    fn heatmap_shows_hot_bottom_half() {
        let rec = record_hot_low_half();
        let hm = Heatmap::from_record(&rec, AddrRange::new(0, 2 << 20), 10, 8).unwrap();
        let bottom = hm.mean_intensity(0.0..0.5, 0.0..1.0);
        let top = hm.mean_intensity(0.5..1.0, 0.0..1.0);
        assert!(bottom > 0.8, "bottom {bottom}");
        assert!(top < 0.05, "top {top}");
        let ascii = hm.render_ascii();
        assert_eq!(ascii.lines().count(), 8);
        assert!(ascii.contains('@') || ascii.contains('%'));
    }

    #[test]
    fn csv_has_header_and_cells() {
        let rec = record_hot_low_half();
        let hm = Heatmap::from_record(&rec, AddrRange::new(0, 2 << 20), 4, 4).unwrap();
        let csv = hm.to_csv();
        assert!(csv.starts_with("time_s,addr_mib,intensity\n"));
        assert_eq!(csv.lines().count(), 1 + 16);
    }

    #[test]
    fn empty_record_gives_none() {
        let rec = MonitorRecord::new();
        assert!(Heatmap::from_record(&rec, AddrRange::new(0, 1 << 20), 4, 4).is_none());
    }

    #[test]
    fn single_snapshot_record_rasterises() {
        // One aggregation window: every access lands in one column, the
        // degenerate t0 == t1 time span must not divide by zero.
        let mut rec = MonitorRecord::new();
        rec.push(Aggregation {
            at: sec(3),
            regions: vec![RegionInfo {
                range: AddrRange::new(0, 1 << 20),
                nr_accesses: 10,
                age: 0,
            }],
            max_nr_accesses: 20,
            aggregation_interval: sec(1),
        });
        let hm = Heatmap::from_record(&rec, AddrRange::new(0, 1 << 20), 4, 4).unwrap();
        assert_eq!(hm.time_span, (sec(3), sec(3)));
        assert!(hm.cells.iter().all(|&c| (0.0..=1.0).contains(&c)));
        // The single window maps to column 0; it must carry the signal.
        assert!(hm.cell(0, 0) > 0.4, "cell(0,0) = {}", hm.cell(0, 0));
    }

    #[test]
    fn zero_width_span_and_zero_cells_give_none() {
        let rec = record_hot_low_half();
        let zero = AddrRange::new(1 << 20, 1 << 20);
        assert!(Heatmap::from_record(&rec, zero, 4, 4).is_none());
        let span = AddrRange::new(0, 2 << 20);
        assert!(Heatmap::from_record(&rec, span, 0, 4).is_none());
        assert!(Heatmap::from_record(&rec, span, 4, 0).is_none());
    }

    daos_util::proptest! {
        cases = 64;

        /// Whatever the record shape, every rasterised cell is a valid
        /// frequency ratio: a weighted average of `freq_ratio` values
        /// can never leave 0.0..=1.0.
        fn cells_stay_normalised(
            nr_windows in 1u64..12,
            nr_regions in 1u64..6,
            stride in 1u64..(4 << 20),
            accesses in 0u32..40,
            nr_cols in 1usize..24,
            nr_rows in 1usize..16,
        ) {
            let mut rec = MonitorRecord::new();
            for w in 0..nr_windows {
                let mut regions = Vec::new();
                for r in 0..nr_regions {
                    // Deterministic per-(window, region) variation,
                    // respecting the monitor invariant
                    // `nr_accesses <= max_nr_accesses`.
                    let acc = (accesses as u64 + w * 7 + r * 3) % 21;
                    regions.push(RegionInfo {
                        range: AddrRange::new(r * stride, (r + 1) * stride),
                        nr_accesses: acc as u32,
                        age: (w % 5) as u32,
                    });
                }
                rec.push(Aggregation {
                    at: sec(w),
                    regions,
                    max_nr_accesses: 20,
                    aggregation_interval: sec(1),
                });
            }
            let span = biggest_active_span(&rec).expect("non-empty record");
            if let Some(hm) = Heatmap::from_record(&rec, span, nr_cols, nr_rows) {
                daos_util::prop_assert!(
                    hm.cells.iter().all(|&c| (0.0..=1.0).contains(&c) && c.is_finite()),
                    "cell out of range: {:?}",
                    hm.cells.iter().find(|c| !(0.0..=1.0).contains(*c))
                );
                daos_util::prop_assert_eq!(hm.cells.len(), nr_cols * nr_rows);
            }
        }
    }

    #[test]
    fn biggest_active_span_skips_gaps() {
        let mut rec = MonitorRecord::new();
        rec.push(Aggregation {
            at: 0,
            regions: vec![
                // Small active area low.
                RegionInfo { range: AddrRange::new(0, 1 << 20), nr_accesses: 5, age: 0 },
                // Huge *idle* area (a gap-spanning region).
                RegionInfo {
                    range: AddrRange::new(1 << 20, 1 << 40),
                    nr_accesses: 0,
                    age: 9,
                },
                // Big active area high (e.g. the heap).
                RegionInfo {
                    range: AddrRange::new(1 << 40, (1 << 40) + (64 << 20)),
                    nr_accesses: 9,
                    age: 0,
                },
            ],
            max_nr_accesses: 20,
            aggregation_interval: sec(1),
        });
        let span = biggest_active_span(&rec).unwrap();
        assert_eq!(span.start, 1 << 40, "picks the big active subspace");
        assert!(span.len() >= 64 << 20);
    }
}


daos_util::json_struct!(Heatmap {
    nr_cols, nr_rows, time_span, addr_span, cells,
});
