//! Normalised metrics, as plotted in Figures 7 and 8.

use daos_tuner::{DefaultScore, ScoreFn, ScoreInputs};

use crate::runner::RunResult;

/// A run's metrics normalised against the baseline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normalized {
    /// `baseline_runtime / runtime` — above 1.0 means faster (Fig. 7's
    /// "Performance" axis).
    pub performance: f64,
    /// `baseline_avg_rss / avg_rss` — above 1.0 means less memory
    /// (Fig. 7's "Memory efficiency" axis).
    pub memory_efficiency: f64,
}

impl Normalized {
    /// Normalise `run` against `baseline`.
    pub fn of(baseline: &RunResult, run: &RunResult) -> Normalized {
        Normalized {
            performance: baseline.runtime_ns as f64 / run.runtime_ns.max(1) as f64,
            memory_efficiency: baseline.avg_rss as f64 / run.avg_rss.max(1) as f64,
        }
    }

    /// Percent change in runtime (positive = slowdown), as the paper
    /// quotes ("78.16% slowdown").
    pub fn slowdown_pct(&self) -> f64 {
        (1.0 / self.performance - 1.0) * 100.0
    }

    /// Percent memory saving (positive = less memory), as the paper
    /// quotes ("91.34% memory saving").
    pub fn memory_saving_pct(&self) -> f64 {
        (1.0 - 1.0 / self.memory_efficiency) * 100.0
    }
}

/// Listing-2 score of `run` against `baseline` (stateless convenience —
/// for the stateful SLA behaviour drive [`DefaultScore`] directly).
pub fn score_vs_baseline(baseline: &RunResult, run: &RunResult) -> f64 {
    let mut f = DefaultScore::default();
    f.score(&ScoreInputs {
        runtime: run.runtime_ns as f64,
        orig_runtime: baseline.runtime_ns as f64,
        rss: run.avg_rss as f64,
        orig_rss: baseline.avg_rss as f64,
    })
}

/// The [`ScoreInputs`] for a run pair, for callers that need the raw
/// values (e.g. the Fig. 4 sweep with its stateful score function).
pub fn score_inputs(baseline: &RunResult, run: &RunResult) -> ScoreInputs {
    ScoreInputs {
        runtime: run.runtime_ns as f64,
        orig_runtime: baseline.runtime_ns as f64,
        rss: run.avg_rss as f64,
        orig_rss: baseline.avg_rss as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_mm::stats::{KernelStats, ProcStats};

    fn result(runtime_ns: u64, avg_rss: u64) -> RunResult {
        RunResult {
            config: "x".into(),
            workload: "w".into(),
            machine: "m".into(),
            runtime_ns,
            avg_rss,
            peak_rss: avg_rss,
            stats: ProcStats::default(),
            kstats: KernelStats::default(),
            record: None,
            overhead: None,
            scheme_stats: vec![],
        }
    }

    #[test]
    fn normalisation_directions() {
        let base = result(100, 1000);
        let faster_smaller = result(80, 500);
        let n = Normalized::of(&base, &faster_smaller);
        assert!(n.performance > 1.0);
        assert!(n.memory_efficiency > 1.0);
        assert!((n.performance - 1.25).abs() < 1e-9);
        assert!((n.memory_efficiency - 2.0).abs() < 1e-9);
        assert!((n.memory_saving_pct() - 50.0).abs() < 1e-9);
        assert!(n.slowdown_pct() < 0.0, "speedup = negative slowdown");
    }

    #[test]
    fn slowdown_pct_matches_paper_quoting() {
        let base = result(100, 1000);
        let slow = result(178, 640);
        let n = Normalized::of(&base, &slow);
        assert!((n.slowdown_pct() - 78.0).abs() < 1e-9);
        assert!((n.memory_saving_pct() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn score_sign() {
        let base = result(100, 1000);
        let good = result(101, 500); // ~0 perf, 50% saving → ~+25
        let s = score_vs_baseline(&base, &good);
        assert!(s > 20.0 && s < 26.0, "score {s}");
    }
}


daos_util::json_struct!(Normalized { performance, memory_efficiency });
