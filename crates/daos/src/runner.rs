//! The experiment runner: drive one workload under one configuration on
//! one machine, with the monitor and schemes engine in the loop — the
//! whole Fig. 1 workflow under a deterministic virtual clock.
//!
//! The per-epoch pipeline lives in three crate-internal phase functions
//! ([`workload_phase`], [`monitor_phase`], [`khugepaged_phase`]) shared
//! verbatim with the fleet engine ([`crate::fleet`]), so a fleet of one
//! process executes the *same instruction sequence* as a single run —
//! the cross-validation hinge the N=1 equivalence test pins.

use daos_mm::access::AccessBatch;
use daos_mm::clock::{sec, Ns};
use daos_mm::error::{MmError, MmResult};
use daos_mm::machine::MachineProfile;
use daos_mm::process::Pid;
use daos_mm::stats::{KernelStats, ProcStats};
use daos_mm::system::MemorySystem;
use daos_monitor::{
    Aggregation, MonitorAttrs, MonitorCtx, MonitorRecord, OverheadStats, PaddrPrimitives,
    VaddrPrimitives,
};
use daos_schemes::{SchemeTarget, SchemesEngine, SchemeStats};
use daos_workloads::{instantiate, SyntheticWorkload, Workload, WorkloadSpec};

use crate::config::{MonitorKind, RunConfig};

/// Interval of the background khugepaged promoter in the `thp` config.
pub(crate) const KHUGEPAGED_INTERVAL: Ns = sec(1);

/// Everything one run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Configuration name.
    pub config: String,
    /// Workload path name.
    pub workload: String,
    /// Machine profile name.
    pub machine: String,
    /// Total virtual runtime (the paper's performance metric).
    pub runtime_ns: Ns,
    /// Time-weighted average RSS (the paper's memory metric).
    pub avg_rss: u64,
    /// Peak RSS.
    pub peak_rss: u64,
    /// Full process statistics.
    pub stats: ProcStats,
    /// Kernel-side statistics.
    pub kstats: KernelStats,
    /// The aggregation record (when `config.record`).
    pub record: Option<MonitorRecord>,
    /// Monitoring overhead counters (when monitoring ran).
    pub overhead: Option<OverheadStats>,
    /// Per-scheme statistics.
    pub scheme_stats: Vec<SchemeStats>,
}

impl RunResult {
    /// Monitor CPU utilisation share of one core over the run (the
    /// paper reports ~1.37 % / 1.46 % for rec / prec).
    pub fn monitor_cpu_share(&self) -> f64 {
        self.overhead.map(|o| o.cpu_share(self.runtime_ns)).unwrap_or(0.0)
    }
}

/// Live progress handed to a [`RunObserver`] once per epoch, borrowed
/// straight from the runner's state — building it allocates nothing, so
/// observation is cheap and a `None` observer costs one branch.
#[derive(Debug)]
pub struct RunProgress<'a> {
    /// Epoch just completed (0-based).
    pub epoch: u64,
    /// Total epochs this run will execute.
    pub nr_epochs: u64,
    /// Virtual clock after the epoch.
    pub now_ns: Ns,
    /// The workload's process statistics so far.
    pub stats: &'a ProcStats,
    /// Kernel-side statistics so far.
    pub kstats: &'a KernelStats,
    /// The most recent completed aggregation window, if any.
    pub last_window: Option<&'a Aggregation>,
    /// Per-scheme counters so far (empty without a schemes engine).
    pub scheme_stats: &'a [SchemeStats],
    /// Monitoring overhead counters so far (None without a monitor).
    pub overhead: Option<OverheadStats>,
}

/// Hook into a live run: [`run_observed`] calls `on_epoch` after every
/// workload epoch (monitor and schemes already caught up). Observers run
/// on the simulation thread — keep them cheap, and throttle internally
/// if they do real work (the observability publisher snapshots every
/// N-th call).
pub trait RunObserver {
    /// One epoch of the simulation finished.
    fn on_epoch(&mut self, progress: &RunProgress<'_>);
}

/// Monomorphised monitor wrapper so one runner handles both primitives.
/// Crate-visible: the fleet engine wraps its per-process (vaddr) and
/// per-shard (paddr) contexts in the same type so the shared phase
/// functions drive both paths.
pub(crate) enum AnyMonitor {
    Vaddr(MonitorCtx<VaddrPrimitives>),
    Paddr(MonitorCtx<PaddrPrimitives>),
}

impl AnyMonitor {
    fn step(&mut self, sys: &mut MemorySystem, now: Ns, sink: &mut Vec<Aggregation>) {
        match self {
            AnyMonitor::Vaddr(ctx) => ctx.step(sys, now, sink),
            AnyMonitor::Paddr(ctx) => ctx.step(sys, now, sink),
        }
    }

    fn take_work_ns(&mut self) -> Ns {
        match self {
            AnyMonitor::Vaddr(ctx) => ctx.take_work_ns(),
            AnyMonitor::Paddr(ctx) => ctx.take_work_ns(),
        }
    }

    pub(crate) fn overhead(&self) -> OverheadStats {
        match self {
            AnyMonitor::Vaddr(ctx) => ctx.overhead,
            AnyMonitor::Paddr(ctx) => ctx.overhead,
        }
    }
}

/// Build the monitoring context `kind` describes, seeded with the
/// runner's fixed monitor stream (`seed ^ 0xda05`). `attrs` is passed
/// separately from the config because the fleet engine divides a global
/// region budget across processes (see [`crate::fleet::FleetSpec`]).
pub(crate) fn build_monitor(
    kind: Option<MonitorKind>,
    attrs: MonitorAttrs,
    sys: &MemorySystem,
    pid: Pid,
    seed: u64,
) -> Option<AnyMonitor> {
    match kind {
        Some(MonitorKind::Vaddr) => Some(AnyMonitor::Vaddr(MonitorCtx::new(
            attrs,
            VaddrPrimitives::new(pid),
            sys,
            sys.now(),
            seed ^ 0xda05,
        ))),
        Some(MonitorKind::Paddr) => Some(AnyMonitor::Paddr(MonitorCtx::new(
            attrs,
            PaddrPrimitives,
            sys,
            sys.now(),
            seed ^ 0xda05,
        ))),
        None => None,
    }
}

/// Epoch phase 1: the workload runs one quantum and its access + compute
/// cost advances the clock.
pub(crate) fn workload_phase(
    sys: &mut MemorySystem,
    pid: Pid,
    wl: &mut SyntheticWorkload,
    idx: u64,
    cpu_scale: f64,
    batches: &mut Vec<AccessBatch>,
) -> MmResult<()> {
    batches.clear();
    let compute_ref = wl.epoch(idx, sys.now(), batches);
    let compute = (compute_ref as f64 * cpu_scale) as Ns;
    let mut cost = compute;
    for b in batches.iter() {
        cost += sys.apply_access(pid, b)?.cost_ns;
    }
    if let Some(st) = sys.proc_stats_mut(pid) {
        st.compute_ns += compute;
    }
    sys.advance(cost);
    Ok(())
}

/// Epoch phases 2–3: the monitor catches up with virtual time and the
/// engine consumes each completed aggregation, with all work charged as
/// interference against `pid`. With `keep_last`, the freshest window is
/// kept (cloned if it also goes into the record) for observers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn monitor_phase(
    sys: &mut MemorySystem,
    pid: Pid,
    monitor: &mut Option<AnyMonitor>,
    engine: &mut Option<SchemesEngine>,
    record: &mut Option<MonitorRecord>,
    sink: &mut Vec<Aggregation>,
    last_window: &mut Option<Aggregation>,
    keep_last: bool,
) {
    let Some(mon) = monitor else { return };
    let now = sys.now();
    mon.step(sys, now, sink);
    let interference = sys.charge_monitor(mon.take_work_ns());
    if interference > 0 {
        if let Some(st) = sys.proc_stats_mut(pid) {
            st.monitor_interference_ns += interference;
        }
        sys.advance(interference);
    }
    for agg in sink.drain(..) {
        if let Some(engine) = engine {
            let pass = engine.on_aggregation(sys, &agg);
            let interference = sys.charge_schemes(pass.work_ns);
            if interference > 0 {
                if let Some(st) = sys.proc_stats_mut(pid) {
                    st.monitor_interference_ns += interference;
                }
                sys.advance(interference);
            }
        }
        match record {
            Some(rec) => {
                if keep_last {
                    *last_window = Some(agg.clone());
                }
                rec.push(agg);
            }
            None if keep_last => *last_window = Some(agg),
            None => {}
        }
    }
}

/// Epoch phase 4: Linux-original THP — aggressive background promotion.
pub(crate) fn khugepaged_phase(
    sys: &mut MemorySystem,
    pid: Pid,
    enabled: bool,
    next_khugepaged: &mut Ns,
) -> MmResult<()> {
    if enabled && sys.now() >= *next_khugepaged {
        let (_, ns) = sys.khugepaged_scan(pid, 1)?;
        let interference = sys.charge_schemes(ns);
        if let Some(st) = sys.proc_stats_mut(pid) {
            st.stall_ns += interference;
        }
        sys.advance(interference);
        *next_khugepaged = sys.now() + KHUGEPAGED_INTERVAL;
    }
    Ok(())
}

/// Run `spec` under `config` on `machine`. `seed` fixes all randomness
/// (workload draws, monitor sampling, region splits).
///
/// **Deprecated entry point** — prefer
/// [`Session`](crate::Session)::`new(machine, config, spec).seed(s).execute()`,
/// which scales the same run from one process to a fleet (via
/// [`FleetSpec`](crate::FleetSpec)). This shim stays for source
/// compatibility and simply delegates.
pub fn run(
    machine: &MachineProfile,
    config: &RunConfig,
    spec: &WorkloadSpec,
    seed: u64,
) -> MmResult<RunResult> {
    execute_single(machine, config, spec, seed, None)
}

/// [`run`], with an optional per-epoch [`RunObserver`]. With
/// `observer == None` this is exactly `run`: no progress struct is
/// built and no aggregation is cloned, so the unobserved sim loop stays
/// allocation-identical to before the hook existed (the zero-overhead
/// pin the obs-plane tests rely on).
///
/// **Deprecated entry point** — prefer
/// [`Session`](crate::Session)::`new(...).seed(s).observer(o).execute()`.
/// This shim stays for source compatibility and simply delegates.
pub fn run_observed(
    machine: &MachineProfile,
    config: &RunConfig,
    spec: &WorkloadSpec,
    seed: u64,
    observer: Option<&mut dyn RunObserver>,
) -> MmResult<RunResult> {
    execute_single(machine, config, spec, seed, observer)
}

/// The single-process engine behind [`run`] / [`run_observed`] and
/// [`crate::Session::execute`].
pub(crate) fn execute_single(
    machine: &MachineProfile,
    config: &RunConfig,
    spec: &WorkloadSpec,
    seed: u64,
    mut observer: Option<&mut dyn RunObserver>,
) -> MmResult<RunResult> {
    let mut sys = MemorySystem::new(machine.clone(), config.swap, seed);
    let mut wl = instantiate(*spec, seed);
    let pid = wl.setup(&mut sys, config.thp)?;

    let mut monitor = build_monitor(config.monitor, config.attrs, &sys, pid, seed);
    let mut engine = (!config.schemes.is_empty()).then(|| {
        let target = match config.monitor {
            Some(MonitorKind::Paddr) => SchemeTarget::Physical,
            _ => SchemeTarget::Virtual(pid),
        };
        SchemesEngine::new(target, config.schemes.clone())
    });
    let mut record = config.record.then(MonitorRecord::new);
    let mut sink: Vec<Aggregation> = Vec::new();
    let mut batches = Vec::new();
    let mut next_khugepaged = KHUGEPAGED_INTERVAL;
    let cpu_scale = 3.0 / machine.cpu_ghz;
    let observing = observer.is_some();
    let mut last_window: Option<Aggregation> = None;
    let nr_epochs = wl.nr_epochs();

    for idx in 0..nr_epochs {
        workload_phase(&mut sys, pid, &mut wl, idx, cpu_scale, &mut batches)?;
        monitor_phase(
            &mut sys,
            pid,
            &mut monitor,
            &mut engine,
            &mut record,
            &mut sink,
            &mut last_window,
            observing,
        );
        khugepaged_phase(&mut sys, pid, config.khugepaged, &mut next_khugepaged)?;

        // Observation hook (a single branch when nobody listens).
        if let Some(obs) = observer.as_deref_mut() {
            let stats =
                sys.proc_stats(pid).ok_or(MmError::NoSuchProcess(pid))?;
            obs.on_epoch(&RunProgress {
                epoch: idx,
                nr_epochs,
                now_ns: sys.now(),
                stats,
                kstats: &sys.kstats,
                last_window: last_window.as_ref(),
                scheme_stats: engine.as_ref().map_or(&[][..], |e| e.stats()),
                overhead: monitor.as_ref().map(|m| m.overhead()),
            });
        }
    }

    let runtime_ns = sys.now();
    let stats = *sys.proc_stats(pid).ok_or(MmError::NoSuchProcess(pid))?;
    Ok(RunResult {
        config: config.name.clone(),
        workload: wl.name(),
        machine: machine.name.clone(),
        runtime_ns,
        avg_rss: stats.avg_rss_bytes(runtime_ns),
        peak_rss: stats.peak_rss_bytes,
        stats,
        kstats: sys.kstats,
        record,
        overhead: monitor.as_ref().map(|m| m.overhead()),
        scheme_stats: engine.map(|e| e.stats().to_vec()).unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;
    use daos_mm::clock::ms;
    use daos_workloads::{Behavior, Suite};

    /// A fast, small workload for runner tests (~2 s virtual).
    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny",
            suite: Suite::Parsec3,
            footprint: 16 << 20,
            nr_epochs: 2500,
            compute_ns: ms(1),
            behavior: Behavior::MostlyIdle { active_frac: 0.1, apc: 4.0, stray_prob: 0.0 },
        }
    }

    fn machine() -> MachineProfile {
        MachineProfile::i3_metal()
    }

    #[test]
    fn baseline_run_completes() {
        let r = run(&machine(), &RunConfig::baseline(), &tiny_spec(), 1).unwrap();
        assert!(r.runtime_ns > 0);
        assert_eq!(r.avg_rss, 16 << 20, "everything stays resident");
        assert!(r.record.is_none());
        assert!(r.overhead.is_none());
    }

    #[test]
    fn rec_monitors_with_low_overhead() {
        let base = run(&machine(), &RunConfig::baseline(), &tiny_spec(), 1).unwrap();
        let rec = run(&machine(), &RunConfig::rec(), &tiny_spec(), 1).unwrap();
        let record = rec.record.as_ref().expect("rec records");
        assert!(record.len() > 10, "aggregations recorded: {}", record.len());
        let overhead = rec.overhead.unwrap();
        assert!(overhead.total_checks > 0);
        // Conclusion-3: monitoring costs ~1 % of a CPU and slows the
        // workload by a few percent at most.
        let share = rec.monitor_cpu_share();
        assert!(share < 0.05, "monitor CPU share {share}");
        let slowdown = rec.runtime_ns as f64 / base.runtime_ns as f64;
        assert!(slowdown < 1.06, "rec slowdown {slowdown}");
    }

    #[test]
    fn prec_overhead_independent_of_target_size() {
        // prec monitors the whole machine (2 GiB+) instead of 16 MiB but
        // its check count per tick obeys the same max_nr_regions bound.
        let rec = run(&machine(), &RunConfig::rec(), &tiny_spec(), 1).unwrap();
        let prec = run(&machine(), &RunConfig::prec(), &tiny_spec(), 1).unwrap();
        let ro = rec.overhead.unwrap();
        let po = prec.overhead.unwrap();
        let cap = 2 * RunConfig::prec().attrs.max_nr_regions as u64;
        assert!(po.max_checks_per_tick <= cap);
        assert!(ro.max_checks_per_tick <= cap);
        // Same order of magnitude despite a 100x bigger target.
        assert!(po.avg_checks_per_tick() < 10.0 * ro.avg_checks_per_tick().max(20.0));
    }

    #[test]
    fn prcl_saves_memory_on_idle_workload() {
        let base = run(&machine(), &RunConfig::baseline(), &tiny_spec(), 1).unwrap();
        let prcl =
            run(&machine(), &RunConfig::prcl_with_min_age(sec(1)), &tiny_spec(), 1).unwrap();
        assert!(prcl.kstats.damos_pageouts > 0, "pageouts happened");
        assert!(
            (prcl.avg_rss as f64) < 0.6 * base.avg_rss as f64,
            "90% idle workload: avg RSS {} vs baseline {}",
            prcl.avg_rss,
            base.avg_rss
        );
        // The hot 10 % stays resident, so the slowdown is modest.
        let slowdown = prcl.runtime_ns as f64 / base.runtime_ns as f64;
        assert!(slowdown < 1.25, "slowdown {slowdown}");
    }

    #[test]
    fn thp_and_ethp_runs_complete() {
        let spec = WorkloadSpec {
            footprint: 32 << 20,
            behavior: Behavior::Streaming {
                window_frac: 0.25,
                stride: 2,
                apc: 16.0,
                sweep_period: sec(1),
            },
            ..tiny_spec()
        };
        let base = run(&machine(), &RunConfig::baseline(), &spec, 1).unwrap();
        let thp = run(&machine(), &RunConfig::thp(), &spec, 1).unwrap();
        // Aggressive promotion of the stride-2 workload bloats memory…
        assert!(
            thp.avg_rss as f64 > 1.3 * base.avg_rss as f64,
            "thp bloat: {} vs {}",
            thp.avg_rss,
            base.avg_rss
        );
        // …and speeds it up (TLB reach).
        assert!(thp.runtime_ns < base.runtime_ns, "thp gains");
        let ethp = run(&machine(), &RunConfig::ethp(), &spec, 1).unwrap();
        assert!(ethp.stats.thp_promotions > 0, "ethp promoted hot regions");
        // ethp keeps part of the gain at a fraction of the bloat.
        assert!(ethp.avg_rss < thp.avg_rss, "ethp bloat below thp");
        assert!(ethp.runtime_ns < base.runtime_ns, "ethp still gains");
    }

    #[test]
    fn damon_reclaim_quota_caps_bandwidth() {
        // The unquota'd prcl reclaims the idle 90% almost immediately;
        // DAMON_RECLAIM's 8 MiB / 500 ms quota spreads the same reclaim
        // out, so early-run RSS stays higher (but converges eventually).
        let spec = WorkloadSpec {
            footprint: 48 << 20,
            nr_epochs: 1200, // ~1.6 s virtual: quota binds hard
            ..tiny_spec()
        };
        let prcl = run(&machine(), &RunConfig::prcl_with_min_age(ms(200)), &spec, 3).unwrap();
        let mut reclaim_cfg = RunConfig::damon_reclaim();
        reclaim_cfg.schemes[0].scheme =
            RunConfig::prcl_with_min_age(ms(200)).schemes[0].scheme;
        // Disable the watermarks so only the quota differs (the test
        // machine has no memory pressure).
        reclaim_cfg.schemes[0].watermarks = None;
        let reclaim = run(&machine(), &reclaim_cfg, &spec, 3).unwrap();
        assert!(
            reclaim.avg_rss > prcl.avg_rss + (4 << 20),
            "quota slows reclaim: damon_reclaim avg {} vs prcl avg {}",
            reclaim.avg_rss,
            prcl.avg_rss,
        );
        assert!(reclaim.scheme_stats[0].nr_quota_skips > 0);
        assert!(reclaim.kstats.damos_pageouts > 0, "but it does reclaim");
    }

    #[test]
    fn observer_sees_every_epoch_and_perturbs_nothing() {
        #[derive(Default)]
        struct Counting {
            calls: u64,
            last_epoch: u64,
            windows_seen: u64,
            max_wss: u64,
        }
        impl RunObserver for Counting {
            fn on_epoch(&mut self, p: &RunProgress<'_>) {
                self.calls += 1;
                self.last_epoch = p.epoch;
                assert!(p.now_ns > 0);
                assert!(p.overhead.is_some(), "rec config monitors");
                if let Some(w) = p.last_window {
                    self.windows_seen += 1;
                    self.max_wss = self.max_wss.max(w.hot_bytes_estimate());
                }
            }
        }
        let spec = tiny_spec();
        let mut obs = Counting::default();
        let observed =
            run_observed(&machine(), &RunConfig::rec(), &spec, 1, Some(&mut obs)).unwrap();
        assert_eq!(obs.calls, spec.nr_epochs);
        assert_eq!(obs.last_epoch, spec.nr_epochs - 1);
        assert!(obs.windows_seen > obs.calls / 2, "windows stick around once seen");
        assert!(obs.max_wss > 0, "the idle workload still has a hot working set");
        // Observation must not change the simulation.
        let plain = run(&machine(), &RunConfig::rec(), &spec, 1).unwrap();
        assert_eq!(plain.runtime_ns, observed.runtime_ns);
        assert_eq!(plain.avg_rss, observed.avg_rss);
        assert_eq!(plain.stats, observed.stats);
    }

    #[test]
    fn deterministic_runs() {
        let a = run(&machine(), &RunConfig::prcl(), &tiny_spec(), 7).unwrap();
        let b = run(&machine(), &RunConfig::prcl(), &tiny_spec(), 7).unwrap();
        assert_eq!(a.runtime_ns, b.runtime_ns);
        assert_eq!(a.avg_rss, b.avg_rss);
        let c = run(&machine(), &RunConfig::prcl(), &tiny_spec(), 8).unwrap();
        assert_ne!(a.runtime_ns, c.runtime_ns, "different seed, different run");
    }
}
