//! The crate-wide typed error: every fallible path in the top-level API
//! and the CLI funnels into [`DaosError`], which knows its layer of
//! origin and the sysexits-style exit code the CLI should die with.

use daos_mm::error::MmError;
use daos_monitor::AttrsError;
use daos_schemes::{ParseError, SchemeConfigError, SchemeParseError};
use daos_trace::TraceError;
use daos_util::json::JsonError;

use crate::recordio::RecordError;

/// Anything that can go wrong across the DAOS layers.
#[derive(Debug)]
pub enum DaosError {
    /// Memory-management substrate failure.
    Mm(MmError),
    /// Invalid monitoring attributes.
    Attrs(AttrsError),
    /// A scheme file failed to parse (carries the 1-based line).
    Schemes(ParseError),
    /// A single scheme line failed to parse.
    SchemeLine(SchemeParseError),
    /// An invalid scheme configuration (quota/watermark attachment).
    SchemeConfig(SchemeConfigError),
    /// A record file failed to parse.
    Record(RecordError),
    /// Telemetry collector misuse (bad capacity, double install).
    Trace(TraceError),
    /// Malformed JSON input.
    Json(JsonError),
    /// Filesystem I/O failure, with the path that caused it.
    Io {
        /// The file involved.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A run configuration pairs schemes with no monitor to feed them.
    SchemesWithoutMonitor,
    /// `daos-lint` found workspace-invariant violations (the count).
    Lint {
        /// How many findings survived annotation suppression.
        findings: usize,
    },
    /// Bad command-line usage (unknown subcommand, missing argument...).
    Usage(String),
}

impl DaosError {
    /// Wrap an I/O error with the path it happened on.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        DaosError::Io { path: path.into(), source }
    }

    /// A usage error from a message.
    pub fn usage(msg: impl Into<String>) -> Self {
        DaosError::Usage(msg.into())
    }

    /// sysexits.h-style exit code for the CLI: 2 for usage errors,
    /// `EX_DATAERR` (65) for malformed input, `EX_IOERR` (74) for
    /// filesystem failures, `EX_SOFTWARE` (70) for internal failures.
    pub fn exit_code(&self) -> i32 {
        match self {
            DaosError::Usage(_) => 2,
            DaosError::Attrs(_)
            | DaosError::Schemes(_)
            | DaosError::SchemeLine(_)
            | DaosError::SchemeConfig(_)
            | DaosError::Record(_)
            | DaosError::Json(_)
            | DaosError::SchemesWithoutMonitor
            | DaosError::Lint { .. } => 65,
            DaosError::Io { .. } => 74,
            DaosError::Mm(_) | DaosError::Trace(_) => 70,
        }
    }
}

impl core::fmt::Display for DaosError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DaosError::Mm(e) => write!(f, "{e}"),
            DaosError::Attrs(e) => write!(f, "{e}"),
            DaosError::Schemes(e) => write!(f, "{e}"),
            DaosError::SchemeLine(e) => write!(f, "{e}"),
            DaosError::SchemeConfig(e) => write!(f, "{e}"),
            DaosError::Record(e) => write!(f, "{e}"),
            DaosError::Trace(e) => write!(f, "{e}"),
            DaosError::Json(e) => write!(f, "{e}"),
            DaosError::Io { path, source } => write!(f, "{path}: {source}"),
            DaosError::SchemesWithoutMonitor => {
                write!(f, "schemes need a monitor: set `monitor` in the run configuration")
            }
            DaosError::Lint { findings } => {
                write!(f, "{findings} workspace invariant violation(s)")
            }
            DaosError::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DaosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaosError::Mm(e) => Some(e),
            DaosError::Attrs(e) => Some(e),
            DaosError::Schemes(e) => Some(e),
            DaosError::SchemeLine(e) => Some(e),
            DaosError::SchemeConfig(e) => Some(e),
            DaosError::Record(e) => Some(e),
            DaosError::Trace(e) => Some(e),
            DaosError::Json(e) => Some(e),
            DaosError::Io { source, .. } => Some(source),
            DaosError::SchemesWithoutMonitor
            | DaosError::Lint { .. }
            | DaosError::Usage(_) => None,
        }
    }
}

impl From<MmError> for DaosError {
    fn from(e: MmError) -> Self {
        DaosError::Mm(e)
    }
}

impl From<AttrsError> for DaosError {
    fn from(e: AttrsError) -> Self {
        DaosError::Attrs(e)
    }
}

impl From<ParseError> for DaosError {
    fn from(e: ParseError) -> Self {
        DaosError::Schemes(e)
    }
}

impl From<SchemeParseError> for DaosError {
    fn from(e: SchemeParseError) -> Self {
        DaosError::SchemeLine(e)
    }
}

impl From<SchemeConfigError> for DaosError {
    fn from(e: SchemeConfigError) -> Self {
        DaosError::SchemeConfig(e)
    }
}

impl From<RecordError> for DaosError {
    fn from(e: RecordError) -> Self {
        DaosError::Record(e)
    }
}

impl From<TraceError> for DaosError {
    fn from(e: TraceError) -> Self {
        DaosError::Trace(e)
    }
}

impl From<JsonError> for DaosError {
    fn from(e: JsonError) -> Self {
        DaosError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_sysexits() {
        assert_eq!(DaosError::usage("x").exit_code(), 2);
        assert_eq!(DaosError::from(MmError::OutOfMemory).exit_code(), 70);
        assert_eq!(DaosError::io("/f", std::io::Error::other("x")).exit_code(), 74);
        assert_eq!(
            DaosError::from(daos_schemes::parse_scheme_line("bogus").unwrap_err()).exit_code(),
            65
        );
        assert_eq!(DaosError::SchemesWithoutMonitor.exit_code(), 65);
    }

    #[test]
    fn display_preserves_inner_messages() {
        let e = DaosError::from(daos_schemes::parse_schemes("ok\nbogus").unwrap_err());
        assert!(e.to_string().contains("line 1"), "{e}");
        assert!(e.to_string().contains("expected 7 fields"), "{e}");
        let e = DaosError::io("data.rec", std::io::Error::other("denied"));
        assert!(e.to_string().contains("data.rec"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
