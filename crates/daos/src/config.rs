//! The six system configurations of the paper's evaluation (§4,
//! "Workloads"): *baseline*, *rec*, *prec*, *thp*, *ethp* and *prcl*.

use daos_mm::clock::{ms, sec, Ns};
use daos_mm::swap::SwapConfig;
use daos_mm::vma::ThpMode;
use daos_monitor::MonitorAttrs;
use daos_schemes::{parse_schemes, Quota, Scheme, SchemeConfig, Watermarks};

use crate::error::DaosError;

/// Which monitoring primitive a configuration runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorKind {
    /// Virtual address space of the workload (the paper's `rec`).
    Vaddr,
    /// Entire physical address space of the machine (`prec`).
    Paddr,
}

/// A complete run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Configuration name as in the paper's plots.
    pub name: String,
    /// THP mode for the workload's mappings.
    pub thp: ThpMode,
    /// Whether the kernel's aggressive background promoter runs
    /// (the Linux-original THP behaviour of the `thp` configuration).
    pub khugepaged: bool,
    /// Monitoring, if any.
    pub monitor: Option<MonitorKind>,
    /// Schemes for the engine, each with its quota / watermarks /
    /// filters attached (requires monitoring).
    pub schemes: Vec<SchemeConfig>,
    /// Whether to keep the full aggregation record (Fig. 6 heatmaps).
    pub record: bool,
    /// Swap device.
    pub swap: SwapConfig,
    /// Monitoring attributes.
    pub attrs: MonitorAttrs,
}

impl RunConfig {
    fn base(name: &str) -> Self {
        Self {
            name: name.to_string(),
            thp: ThpMode::Never,
            khugepaged: false,
            monitor: None,
            schemes: Vec::new(),
            record: false,
            swap: SwapConfig::paper_zram(),
            attrs: MonitorAttrs::paper_defaults(),
        }
    }

    /// Start building a configuration from the *baseline* (everything
    /// off); [`RunConfigBuilder::build`] validates the combination.
    pub fn builder(name: &str) -> RunConfigBuilder {
        RunConfigBuilder { config: Self::base(name) }
    }

    /// *baseline*: DAOS disabled, THP off, zram swap.
    pub fn baseline() -> Self {
        Self::base("baseline")
    }

    /// *rec*: baseline + virtual-address monitoring, recording the
    /// workload's access pattern.
    pub fn rec() -> Self {
        Self { monitor: Some(MonitorKind::Vaddr), record: true, ..Self::base("rec") }
    }

    /// *prec*: baseline + physical-address monitoring of the whole guest.
    pub fn prec() -> Self {
        Self { monitor: Some(MonitorKind::Paddr), record: true, ..Self::base("prec") }
    }

    /// *thp*: Linux-original transparent huge pages (aggressive
    /// promotion, no access awareness).
    pub fn thp() -> Self {
        Self { thp: ThpMode::Always, khugepaged: true, ..Self::base("thp") }
    }

    /// *ethp*: the paper's monitoring-based THP scheme — Listing 3
    /// lines 2–3: promote regions with ≥ 5 access samples, demote ≥ 2 MiB
    /// regions idle for ≥ 7 s.
    pub fn ethp() -> Self {
        let schemes = parse_schemes(
            "min max 5 max min max hugepage\n\
             2M max min min 7s max nohugepage",
        )
        // lint: allow(panic, static scheme string, covered by the config tests)
        .expect("static ethp schemes parse");
        Self {
            thp: ThpMode::Madvise,
            monitor: Some(MonitorKind::Vaddr),
            schemes: schemes.into_iter().map(SchemeConfig::from).collect(),
            ..Self::base("ethp")
        }
    }

    /// *prcl*: the paper's monitoring-based proactive reclamation —
    /// Listing 3 line 5: page out ≥ 4 KiB regions idle for ≥ 5 s.
    pub fn prcl() -> Self {
        Self::prcl_with_min_age(sec(5))
    }

    /// *prcl* with a custom idle-age threshold — the aggressiveness knob
    /// the auto-tuner searches over (Figures 4, 5, 8).
    pub fn prcl_with_min_age(min_age: Ns) -> Self {
        let scheme = daos_schemes::parse_scheme_line("4K max min min 5s max pageout")
            // lint: allow(panic, static scheme string, covered by the config tests)
            .expect("static prcl scheme parses");
        let scheme = Scheme {
            min_age: daos_schemes::Bound::Val(daos_schemes::AgeVal::Time(min_age)),
            ..scheme
        };
        Self {
            monitor: Some(MonitorKind::Vaddr),
            schemes: vec![scheme.into()],
            ..Self::base("prcl")
        }
    }

    /// DAMON_RECLAIM: what the prcl idea became as a shipping kernel
    /// module — proactive reclamation with a bandwidth **quota** (so a
    /// mistuned threshold cannot flood the swap device) and free-memory
    /// **watermarks** (so it only runs under pressure and backs off
    /// during emergencies).
    pub fn damon_reclaim() -> Self {
        let mut cfg = Self::prcl();
        cfg.name = "damon_reclaim".into();
        let scheme = cfg.schemes.remove(0).scheme;
        cfg.schemes = vec![scheme
            .configure()
            // 8 MiB per 500 ms reclaim bandwidth cap.
            .quota(Quota { sz_limit: 8 << 20, reset_interval: ms(500) })
            .watermarks(Watermarks::reclaim_defaults())
            .build()
            // lint: allow(panic, static quota/watermark config, covered by the config tests)
            .expect("static damon_reclaim config is valid")];
        cfg
    }

    /// All six paper configurations with default parameters, in Fig. 7's
    /// order (baseline first).
    pub fn paper_configs() -> Vec<RunConfig> {
        vec![
            Self::baseline(),
            Self::rec(),
            Self::prec(),
            Self::thp(),
            Self::ethp(),
            Self::prcl(),
        ]
    }
}

/// Builder for [`RunConfig`]; obtained via [`RunConfig::builder`].
///
/// Starts from the *baseline* configuration (DAOS off, THP off, zram
/// swap, paper monitoring attributes) and validates the combination at
/// [`build`](Self::build): the attributes must be sane, and schemes
/// need a monitor to feed them aggregations.
#[derive(Debug, Clone)]
pub struct RunConfigBuilder {
    config: RunConfig,
}

impl RunConfigBuilder {
    /// THP mode for the workload's mappings.
    pub fn thp(mut self, mode: ThpMode) -> Self {
        self.config.thp = mode;
        self
    }

    /// Run the aggressive background promoter (Linux-original THP).
    pub fn khugepaged(mut self, on: bool) -> Self {
        self.config.khugepaged = on;
        self
    }

    /// Enable monitoring with the given primitive.
    pub fn monitor(mut self, kind: MonitorKind) -> Self {
        self.config.monitor = Some(kind);
        self
    }

    /// Append a scheme (a bare [`Scheme`] or a full [`SchemeConfig`]).
    pub fn scheme(mut self, scheme: impl Into<SchemeConfig>) -> Self {
        self.config.schemes.push(scheme.into());
        self
    }

    /// Keep the full aggregation record.
    pub fn record(mut self, on: bool) -> Self {
        self.config.record = on;
        self
    }

    /// Swap device.
    pub fn swap(mut self, swap: SwapConfig) -> Self {
        self.config.swap = swap;
        self
    }

    /// Monitoring attributes.
    pub fn attrs(mut self, attrs: MonitorAttrs) -> Self {
        self.config.attrs = attrs;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<RunConfig, DaosError> {
        self.config.attrs.validate()?;
        if !self.config.schemes.is_empty() && self.config.monitor.is_none() {
            return Err(DaosError::SchemesWithoutMonitor);
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_schemes::Action;

    #[test]
    fn six_paper_configs() {
        let configs = RunConfig::paper_configs();
        let names: Vec<&str> = configs.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["baseline", "rec", "prec", "thp", "ethp", "prcl"]);
    }

    #[test]
    fn baseline_disables_everything() {
        let c = RunConfig::baseline();
        assert_eq!(c.thp, ThpMode::Never);
        assert!(!c.khugepaged);
        assert!(c.monitor.is_none());
        assert!(c.schemes.is_empty());
        assert!(matches!(c.swap, SwapConfig::Zram { .. }), "baseline uses zram (§4)");
    }

    #[test]
    fn rec_vs_prec_targets() {
        assert_eq!(RunConfig::rec().monitor, Some(MonitorKind::Vaddr));
        assert_eq!(RunConfig::prec().monitor, Some(MonitorKind::Paddr));
        assert!(RunConfig::rec().record);
    }

    #[test]
    fn thp_is_aggressive_and_blind() {
        let c = RunConfig::thp();
        assert_eq!(c.thp, ThpMode::Always);
        assert!(c.khugepaged);
        assert!(c.monitor.is_none(), "no access awareness");
    }

    #[test]
    fn ethp_has_promotion_and_demotion() {
        let c = RunConfig::ethp();
        assert_eq!(c.schemes.len(), 2);
        assert_eq!(c.schemes[0].scheme.action, Action::Hugepage);
        assert_eq!(c.schemes[1].scheme.action, Action::Nohugepage);
        assert_eq!(c.thp, ThpMode::Madvise);
        assert!(!c.khugepaged);
    }

    #[test]
    fn damon_reclaim_has_quota_and_watermarks() {
        let c = RunConfig::damon_reclaim();
        assert_eq!(c.schemes.len(), 1);
        assert_eq!(c.schemes[0].scheme.action, Action::Pageout);
        let quota = c.schemes[0].quota.expect("bandwidth cap attached");
        assert_eq!(quota.sz_limit, 8 << 20);
        let wm = c.schemes[0].watermarks.expect("watermarks attached");
        assert!(wm.validate().is_ok());
    }

    #[test]
    fn prcl_min_age_is_tunable() {
        let c = RunConfig::prcl_with_min_age(sec(17));
        assert_eq!(c.schemes.len(), 1);
        assert_eq!(c.schemes[0].scheme.action, Action::Pageout);
        assert_eq!(
            c.schemes[0].scheme.min_age,
            daos_schemes::Bound::Val(daos_schemes::AgeVal::Time(sec(17)))
        );
    }

    #[test]
    fn builder_assembles_and_validates() {
        let scheme = daos_schemes::parse_scheme_line("min max min min 2m max pageout").unwrap();
        let c = RunConfig::builder("custom")
            .monitor(MonitorKind::Vaddr)
            .scheme(scheme)
            .record(true)
            .attrs(MonitorAttrs::builder().max_nr_regions(100).build().unwrap())
            .build()
            .unwrap();
        assert_eq!(c.name, "custom");
        assert_eq!(c.schemes.len(), 1);
        assert!(c.record);
        assert_eq!(c.attrs.max_nr_regions, 100);
        // Defaults flow from baseline.
        assert_eq!(c.thp, ThpMode::Never);

        // Schemes without a monitor are rejected.
        let err = RunConfig::builder("broken").scheme(scheme).build().unwrap_err();
        assert!(matches!(err, crate::error::DaosError::SchemesWithoutMonitor));

        // Invalid attributes are rejected with the monitor layer's error.
        let mut bad = MonitorAttrs::paper_defaults();
        bad.max_nr_regions = 1;
        let err = RunConfig::builder("broken").attrs(bad).build().unwrap_err();
        assert!(matches!(err, crate::error::DaosError::Attrs(_)));
    }
}
