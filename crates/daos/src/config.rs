//! The six system configurations of the paper's evaluation (§4,
//! "Workloads"): *baseline*, *rec*, *prec*, *thp*, *ethp* and *prcl*.

use daos_mm::clock::{ms, sec, Ns};
use daos_mm::swap::SwapConfig;
use daos_mm::vma::ThpMode;
use daos_monitor::MonitorAttrs;
use daos_schemes::{parse_schemes, Quota, Scheme, Watermarks};

/// Which monitoring primitive a configuration runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorKind {
    /// Virtual address space of the workload (the paper's `rec`).
    Vaddr,
    /// Entire physical address space of the machine (`prec`).
    Paddr,
}

/// A complete run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Configuration name as in the paper's plots.
    pub name: String,
    /// THP mode for the workload's mappings.
    pub thp: ThpMode,
    /// Whether the kernel's aggressive background promoter runs
    /// (the Linux-original THP behaviour of the `thp` configuration).
    pub khugepaged: bool,
    /// Monitoring, if any.
    pub monitor: Option<MonitorKind>,
    /// Schemes for the engine (requires monitoring).
    pub schemes: Vec<Scheme>,
    /// Whether to keep the full aggregation record (Fig. 6 heatmaps).
    pub record: bool,
    /// Swap device.
    pub swap: SwapConfig,
    /// Monitoring attributes.
    pub attrs: MonitorAttrs,
    /// Per-scheme quotas: `(scheme index, quota)`.
    pub quotas: Vec<(usize, Quota)>,
    /// Per-scheme watermarks: `(scheme index, watermarks)`.
    pub watermarks: Vec<(usize, Watermarks)>,
}

impl RunConfig {
    fn base(name: &str) -> Self {
        Self {
            name: name.to_string(),
            thp: ThpMode::Never,
            khugepaged: false,
            monitor: None,
            schemes: Vec::new(),
            record: false,
            swap: SwapConfig::paper_zram(),
            attrs: MonitorAttrs::paper_defaults(),
            quotas: Vec::new(),
            watermarks: Vec::new(),
        }
    }

    /// *baseline*: DAOS disabled, THP off, zram swap.
    pub fn baseline() -> Self {
        Self::base("baseline")
    }

    /// *rec*: baseline + virtual-address monitoring, recording the
    /// workload's access pattern.
    pub fn rec() -> Self {
        Self { monitor: Some(MonitorKind::Vaddr), record: true, ..Self::base("rec") }
    }

    /// *prec*: baseline + physical-address monitoring of the whole guest.
    pub fn prec() -> Self {
        Self { monitor: Some(MonitorKind::Paddr), record: true, ..Self::base("prec") }
    }

    /// *thp*: Linux-original transparent huge pages (aggressive
    /// promotion, no access awareness).
    pub fn thp() -> Self {
        Self { thp: ThpMode::Always, khugepaged: true, ..Self::base("thp") }
    }

    /// *ethp*: the paper's monitoring-based THP scheme — Listing 3
    /// lines 2–3: promote regions with ≥ 5 access samples, demote ≥ 2 MiB
    /// regions idle for ≥ 7 s.
    pub fn ethp() -> Self {
        let schemes = parse_schemes(
            "min max 5 max min max hugepage\n\
             2M max min min 7s max nohugepage",
        )
        .expect("static ethp schemes parse");
        Self {
            thp: ThpMode::Madvise,
            monitor: Some(MonitorKind::Vaddr),
            schemes,
            ..Self::base("ethp")
        }
    }

    /// *prcl*: the paper's monitoring-based proactive reclamation —
    /// Listing 3 line 5: page out ≥ 4 KiB regions idle for ≥ 5 s.
    pub fn prcl() -> Self {
        Self::prcl_with_min_age(sec(5))
    }

    /// *prcl* with a custom idle-age threshold — the aggressiveness knob
    /// the auto-tuner searches over (Figures 4, 5, 8).
    pub fn prcl_with_min_age(min_age: Ns) -> Self {
        let scheme = daos_schemes::parse_scheme_line("4K max min min 5s max pageout")
            .expect("static prcl scheme parses");
        let scheme = Scheme {
            min_age: daos_schemes::Bound::Val(daos_schemes::AgeVal::Time(min_age)),
            ..scheme
        };
        Self {
            monitor: Some(MonitorKind::Vaddr),
            schemes: vec![scheme],
            ..Self::base("prcl")
        }
    }

    /// DAMON_RECLAIM: what the prcl idea became as a shipping kernel
    /// module — proactive reclamation with a bandwidth **quota** (so a
    /// mistuned threshold cannot flood the swap device) and free-memory
    /// **watermarks** (so it only runs under pressure and backs off
    /// during emergencies).
    pub fn damon_reclaim() -> Self {
        let mut cfg = Self::prcl();
        cfg.name = "damon_reclaim".into();
        // 8 MiB per 500 ms reclaim bandwidth cap.
        cfg.quotas.push((0, Quota { sz_limit: 8 << 20, reset_interval: ms(500) }));
        cfg.watermarks.push((0, Watermarks::reclaim_defaults()));
        cfg
    }

    /// All six paper configurations with default parameters, in Fig. 7's
    /// order (baseline first).
    pub fn paper_configs() -> Vec<RunConfig> {
        vec![
            Self::baseline(),
            Self::rec(),
            Self::prec(),
            Self::thp(),
            Self::ethp(),
            Self::prcl(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_schemes::Action;

    #[test]
    fn six_paper_configs() {
        let configs = RunConfig::paper_configs();
        let names: Vec<&str> = configs.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["baseline", "rec", "prec", "thp", "ethp", "prcl"]);
    }

    #[test]
    fn baseline_disables_everything() {
        let c = RunConfig::baseline();
        assert_eq!(c.thp, ThpMode::Never);
        assert!(!c.khugepaged);
        assert!(c.monitor.is_none());
        assert!(c.schemes.is_empty());
        assert!(matches!(c.swap, SwapConfig::Zram { .. }), "baseline uses zram (§4)");
    }

    #[test]
    fn rec_vs_prec_targets() {
        assert_eq!(RunConfig::rec().monitor, Some(MonitorKind::Vaddr));
        assert_eq!(RunConfig::prec().monitor, Some(MonitorKind::Paddr));
        assert!(RunConfig::rec().record);
    }

    #[test]
    fn thp_is_aggressive_and_blind() {
        let c = RunConfig::thp();
        assert_eq!(c.thp, ThpMode::Always);
        assert!(c.khugepaged);
        assert!(c.monitor.is_none(), "no access awareness");
    }

    #[test]
    fn ethp_has_promotion_and_demotion() {
        let c = RunConfig::ethp();
        assert_eq!(c.schemes.len(), 2);
        assert_eq!(c.schemes[0].action, Action::Hugepage);
        assert_eq!(c.schemes[1].action, Action::Nohugepage);
        assert_eq!(c.thp, ThpMode::Madvise);
        assert!(!c.khugepaged);
    }

    #[test]
    fn damon_reclaim_has_quota_and_watermarks() {
        let c = RunConfig::damon_reclaim();
        assert_eq!(c.schemes.len(), 1);
        assert_eq!(c.schemes[0].action, Action::Pageout);
        assert_eq!(c.quotas.len(), 1);
        assert_eq!(c.quotas[0].0, 0);
        assert_eq!(c.watermarks.len(), 1);
        assert!(c.watermarks[0].1.validate().is_ok());
    }

    #[test]
    fn prcl_min_age_is_tunable() {
        let c = RunConfig::prcl_with_min_age(sec(17));
        assert_eq!(c.schemes.len(), 1);
        assert_eq!(c.schemes[0].action, Action::Pageout);
        assert_eq!(
            c.schemes[0].min_age,
            daos_schemes::Bound::Val(daos_schemes::AgeVal::Time(sec(17)))
        );
    }
}
