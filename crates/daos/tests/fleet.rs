//! Fleet engine cross-validation: the scaled path must stay pinned to
//! the single-run path (N=1 equivalence, byte-stable trace), stay
//! deterministic regardless of worker count, keep per-process drop
//! accounting, and show sub-linear monitoring overhead.

use daos::{run, FleetSpec, RunConfig, Session};
use daos_mm::MachineProfile;
use daos_trace::Collector;
use daos_workloads::{by_path, FleetConfig, WorkloadSpec};

fn small_machine() -> MachineProfile {
    let mut m = MachineProfile::i3_metal();
    m.dram_bytes = 1 << 30;
    m
}

fn small_worker(nr_epochs: u64) -> WorkloadSpec {
    let cfg = FleetConfig { worker_footprint: 4 << 20, ..FleetConfig::default() };
    cfg.worker_spec(nr_epochs)
}

/// A fleet of one process is *the same run*: identical RunResult for
/// every paper configuration, vaddr and paddr alike.
#[test]
fn fleet_of_one_equals_single_run() {
    let machine = small_machine();
    let spec = small_worker(40);
    for config in [RunConfig::baseline(), RunConfig::prcl(), RunConfig::prec(), RunConfig::thp()] {
        let single = run(&machine, &config, &spec, 42).unwrap();
        let fleet = Session::new(&machine, &config, &spec)
            .seed(42)
            .fleet(FleetSpec::new(1))
            .execute()
            .unwrap();
        assert_eq!(fleet.runs.len(), 1);
        assert_eq!(
            fleet.runs[0], single,
            "fleet-of-1 diverged from run() under config {}",
            config.name
        );
        let summary = fleet.fleet.expect("fleet summary present");
        assert_eq!(summary.nr_processes, 1);
        assert_eq!(summary.runtime_ns, single.runtime_ns);
    }
}

/// The N=1 fleet runs inline on the caller thread, so a caller-installed
/// trace collector sees a byte-identical event stream.
#[test]
fn fleet_of_one_trace_is_byte_stable() {
    let machine = small_machine();
    let spec = small_worker(30);
    let config = RunConfig::prcl();

    daos_trace::install(Collector::builder().build().unwrap()).unwrap();
    run(&machine, &config, &spec, 7).unwrap();
    let single_trace = daos_trace::export_collector(&daos_trace::take().unwrap());

    daos_trace::install(Collector::builder().build().unwrap()).unwrap();
    Session::new(&machine, &config, &spec)
        .seed(7)
        .fleet(FleetSpec::new(1))
        .execute()
        .unwrap();
    let fleet_trace = daos_trace::export_collector(&daos_trace::take().unwrap());

    assert_eq!(single_trace, fleet_trace, "N=1 fleet trace diverged from run()");
}

/// Worker count is a performance knob, never a results knob: per-process
/// results and the summary (minus pool counters) are identical.
#[test]
fn fleet_results_independent_of_worker_count() {
    let machine = small_machine();
    let spec = small_worker(25);
    let config = RunConfig::prcl();
    let fleet = |workers: usize| {
        Session::new(&machine, &config, &spec)
            .seed(1234)
            .fleet(FleetSpec::new(24).shard_size(4).workers(workers).tenants(3))
            .execute()
            .unwrap()
    };
    let serial = fleet(1);
    let parallel = fleet(4);
    assert_eq!(serial.runs, parallel.runs, "worker count changed per-process results");
    let (s, p) = (serial.fleet.unwrap(), parallel.fleet.unwrap());
    assert_eq!(s.runtime_ns, p.runtime_ns);
    assert_eq!(s.total_avg_rss, p.total_avg_rss);
    assert_eq!(s.total_peak_rss, p.total_peak_rss);
    assert_eq!(s.monitor_work_ns, p.monitor_work_ns);
    assert_eq!(s.monitor_total_checks, p.monitor_total_checks);
    assert_eq!(s.tenants, p.tenants);
    assert_eq!(s.nr_workers, 1);
    assert_eq!(p.nr_workers, 4);
}

/// Same seed, same everything: a fleet run is reproducible.
#[test]
fn fleet_runs_are_deterministic() {
    let machine = small_machine();
    let spec = small_worker(20);
    let config = RunConfig::prcl();
    let go = || {
        Session::new(&machine, &config, &spec)
            .seed(99)
            .fleet(FleetSpec::new(10).shard_size(3).workers(2))
            .execute()
            .unwrap()
    };
    let a = go();
    let b = go();
    assert_eq!(a.runs, b.runs);
    assert_eq!(a.fleet.unwrap().tenants, b.fleet.unwrap().tenants);
}

/// The region budget makes per-process monitoring overhead fall as the
/// fleet grows (the sub-linearity acceptance criterion, in miniature).
#[test]
fn monitoring_overhead_is_sublinear_in_fleet_size() {
    let machine = small_machine();
    let spec = small_worker(12);
    let config = RunConfig::prcl();
    let per_proc = |n: usize| {
        let s = Session::new(&machine, &config, &spec)
            .seed(5)
            .fleet(FleetSpec::new(n).shard_size(8))
            .execute()
            .unwrap()
            .fleet
            .unwrap();
        assert_eq!(s.nr_processes, n);
        s.overhead_per_process_ns()
    };
    let at_small = per_proc(8);
    let at_large = per_proc(128);
    assert!(
        at_large <= at_small,
        "overhead per process grew with the fleet: {at_small} ns @8 vs {at_large} ns @128"
    );
}

/// With per-shard trace rings, drop counts are reported per process —
/// not collapsed into one once-per-run warning.
#[test]
fn per_process_drop_counts_survive_in_summary() {
    let machine = small_machine();
    let spec = small_worker(15);
    let config = RunConfig::prcl();
    let summary = Session::new(&machine, &config, &spec)
        .seed(3)
        .fleet(FleetSpec::new(6).shard_size(2).workers(2).trace_ring(8))
        .execute()
        .unwrap()
        .fleet
        .unwrap();
    assert_eq!(summary.dropped_events.len(), 6, "one drop counter per process");
    let lossy = summary.dropped_events.iter().filter(|&&d| d > 0).count();
    assert!(
        lossy >= 2,
        "expected multiple processes to overflow an 8-event ring, got {:?}",
        summary.dropped_events
    );
    let rendered = summary.render();
    assert!(rendered.contains("events dropped across"), "summary renders drops:\n{rendered}");
}

/// The budget clamp leaves a catalog workload's attrs untouched at N=1
/// and the builder clamps degenerate values.
#[test]
fn fleet_spec_defaults_and_clamps() {
    let spec = FleetSpec::new(0);
    assert_eq!(spec.nr_processes, 1);
    assert_eq!(spec.nr_shards(), 1);
    let spec = FleetSpec::new(100).shard_size(0).tenants(0);
    assert_eq!(spec.procs_per_shard, 1);
    assert_eq!(spec.nr_tenants, 1);
    assert_eq!(spec.nr_shards(), 100);

    let attrs = daos_monitor::MonitorAttrs::paper_defaults();
    assert_eq!(FleetSpec::new(1).effective_attrs(&attrs), attrs, "N=1 attrs unchanged");
    let squeezed = FleetSpec::new(100_000).effective_attrs(&attrs);
    assert_eq!(squeezed.max_nr_regions, attrs.min_nr_regions, "huge fleets hit the floor");
}

/// Session without a fleet spec matches the deprecated run() shim, and
/// works on a catalog workload.
#[test]
fn session_single_matches_run_shim() {
    let machine = small_machine();
    let config = RunConfig::rec();
    let spec = by_path("parsec3/blackscholes").unwrap();
    let mut small = spec;
    small.footprint = 8 << 20;
    small.nr_epochs = 20;
    let via_shim = run(&machine, &config, &small, 11).unwrap();
    let via_session =
        Session::new(&machine, &config, &small).seed(11).execute().unwrap().into_single();
    assert_eq!(via_shim, via_session);
}
