//! JSON round-trip coverage for every record type the tooling writes
//! (report.rs artifacts and recordio.rs records) plus the config types
//! they embed. Encoding goes through the textual form — serialise,
//! re-parse, decode — so these tests pin the wire format, not just the
//! in-memory conversion.

use std::fmt::Debug;

use daos::heatmap::Heatmap;
use daos::metrics::Normalized;
use daos::recordio::{record_from_jsonl, record_to_jsonl};
use daos_mm::access::{AccessBatch, TouchPattern};
use daos_mm::addr::AddrRange;
use daos_mm::clock::{ms, sec, Clock};
use daos_mm::machine::MachineProfile;
use daos_mm::stats::{KernelStats, ProcStats};
use daos_mm::swap::SwapConfig;
use daos_mm::vma::ThpMode;
use daos_monitor::{Aggregation, MonitorAttrs, MonitorRecord, OverheadStats, RegionInfo};
use daos_schemes::action::Action;
use daos_schemes::filter::{AddrFilter, FilterMode};
use daos_schemes::quota::Quota;
use daos_schemes::scheme::{AgeVal, Bound, FreqVal, Scheme};
use daos_schemes::stats::SchemeStats;
use daos_schemes::watermarks::{WatermarkMetric, Watermarks};
use daos_tuner::patterns::ScorePattern;
use daos_tuner::polyfit::Polynomial;
use daos_tuner::score::ScoreInputs;
use daos_tuner::tuner::TunerConfig;
use daos_util::json::{self, FromJson, Json, ToJson};
use daos_workloads::spec::{Suite, WorkloadSpec};
use daos_workloads::suite::paper_suite;

/// Serialise → parse the text → decode → compare (PartialEq types).
fn rt<T: ToJson + FromJson + PartialEq + Debug>(v: &T) {
    let text = v.to_json().to_string_compact();
    let parsed = json::parse(&text).unwrap_or_else(|e| panic!("parse {text}: {e}"));
    let back = T::from_json(&parsed).unwrap_or_else(|e| panic!("decode {text}: {e}"));
    assert_eq!(*v, back, "round trip drifted for {text}");
}

/// Round trip compared at the JSON-text level (types without PartialEq).
fn rt_text<T: ToJson + FromJson>(v: &T) {
    let text = v.to_json().to_string_compact();
    let parsed = json::parse(&text).unwrap_or_else(|e| panic!("parse {text}: {e}"));
    let back = T::from_json(&parsed).unwrap_or_else(|e| panic!("decode {text}: {e}"));
    assert_eq!(text, back.to_json().to_string_compact());
}

#[test]
fn mm_types() {
    rt(&AddrRange::new(0x7f00_0000_0000, 0x7f00_4000_0000));
    // Full-width addresses must survive exactly (the u64 JSON lane).
    rt(&AddrRange::new(0, u64::MAX));
    rt(&Clock::new());
    for m in [ThpMode::Never, ThpMode::Always, ThpMode::Madvise] {
        rt(&m);
    }
    for p in [
        TouchPattern::All,
        TouchPattern::Stride(512),
        TouchPattern::Prob(0.125),
        TouchPattern::Random { count: 37 },
    ] {
        rt(&p);
    }
    rt(&AccessBatch {
        range: AddrRange::new(4096, 1 << 21),
        pattern: TouchPattern::Stride(64),
        accesses_per_page: 3.0,
    });
    for s in [
        SwapConfig::None,
        SwapConfig::Zram { capacity_bytes: 8 << 30, compression_ratio: 2.5 },
        SwapConfig::File { capacity_bytes: 32 << 30 },
    ] {
        rt(&s);
    }
    for profile in MachineProfile::paper_machines() {
        rt(&profile);
    }
}

#[test]
fn stats_types() {
    let mut proc = ProcStats::default();
    proc.minor_faults = 12;
    proc.major_faults = 3;
    proc.peak_rss_bytes = 7 << 30;
    // u128 field: larger than u64::MAX, must survive via string encoding.
    proc.rss_time_integral = (u64::MAX as u128) * 1000;
    rt(&proc);
    let mut kern = KernelStats::default();
    kern.monitor_ns = sec(2);
    kern.damos_pageouts = 99;
    rt(&kern);
    rt(&SchemeStats { nr_tried: 5, sz_tried: 4096, nr_applied: 2, sz_applied: 8192, nr_quota_skips: 1 });
    rt(&OverheadStats::default());
}

#[test]
fn monitor_record_types() {
    rt(&RegionInfo { range: AddrRange::new(0, 4096), nr_accesses: 7, age: 3 });
    rt(&MonitorAttrs::paper_defaults());
    let mut rec = MonitorRecord::new();
    for t in 1..=3u64 {
        rec.push(Aggregation {
            at: sec(t),
            regions: vec![
                RegionInfo { range: AddrRange::new(0, 1 << 20), nr_accesses: 19, age: t as u32 },
                RegionInfo { range: AddrRange::new(1 << 20, 4 << 20), nr_accesses: 0, age: 9 },
            ],
            max_nr_accesses: 20,
            aggregation_interval: ms(100),
        });
    }
    rt(&rec.aggregations[0].clone());
    rt(&rec);
    // The JSONL record file format is the same encoding, line-oriented.
    assert_eq!(record_from_jsonl(&record_to_jsonl(&rec)).unwrap(), rec);
}

#[test]
fn schemes_types() {
    for a in [
        Action::Willneed,
        Action::Cold,
        Action::Hugepage,
        Action::Nohugepage,
        Action::Pageout,
        Action::Stat,
        Action::LruPrio,
        Action::LruDeprio,
    ] {
        rt(&a);
    }
    rt(&AddrFilter { range: AddrRange::new(0, 1 << 30), mode: FilterMode::Allow });
    rt(&AddrFilter { range: AddrRange::new(0, 1 << 30), mode: FilterMode::Reject });
    rt(&Scheme {
        min_sz: Bound::Val(4096),
        max_sz: Bound::Unbounded,
        min_freq: Bound::Val(FreqVal::Percent(12.5)),
        max_freq: Bound::Val(FreqVal::Samples(40)),
        min_age: Bound::Val(AgeVal::Intervals(5)),
        max_age: Bound::Val(AgeVal::Time(sec(30))),
        action: Action::Pageout,
    });
    rt(&Quota { sz_limit: 1 << 30, reset_interval: sec(1) });
    rt(&Watermarks { metric: WatermarkMetric::FreeMemPermille, high: 500, mid: 400, low: 200 });
}

#[test]
fn tuner_types() {
    for p in [
        ScorePattern::Increasing,
        ScorePattern::RiseFallAbove,
        ScorePattern::RiseFallBelow,
        ScorePattern::Decreasing,
        ScorePattern::FallRiseBelow,
        ScorePattern::FallRiseAbove,
    ] {
        rt(&p);
    }
    rt(&ScoreInputs { runtime: 100.0, orig_runtime: 120.0, rss: 3e9, orig_rss: 4e9 });
    rt(&TunerConfig {
        time_limit: sec(300),
        unit_work_time: sec(10),
        range: (0.0, 100.0),
        seed: 42,
    });
    let poly = Polynomial::fit(
        &[(0.0, 1.0), (1.0, 2.0), (2.0, 5.0), (3.0, 10.0), (4.0, 17.0)],
        2,
    )
    .unwrap();
    rt(&poly);
}

#[test]
fn workload_spec_types() {
    // Every catalog entry round-trips, behaviors included; the `name`
    // field decodes by catalog lookup (it is a &'static str).
    for spec in paper_suite() {
        rt_text(&spec);
        let back = WorkloadSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.suite, spec.suite);
    }
    // An edited spec keeps its own field values, only `name` resolves.
    let mut spec = paper_suite().into_iter().next().unwrap();
    spec.footprint *= 2;
    let back = WorkloadSpec::from_json(&spec.to_json()).unwrap();
    assert_eq!(back.footprint, spec.footprint);
    // Unknown names are an error, not a silent fallback.
    let mut j = spec.to_json();
    if let Json::Object(fields) = &mut j {
        for (k, v) in fields.iter_mut() {
            if k == "name" {
                *v = Json::Str("no-such-workload".into());
            }
        }
    }
    assert!(WorkloadSpec::from_json(&j).is_err());
    for s in [Suite::Parsec3, Suite::Splash2x] {
        rt(&s);
    }
}

#[test]
fn report_types() {
    rt(&Normalized { performance: 1.25, memory_efficiency: 0.9 });
    // Heatmap has no PartialEq: compare at the JSON-text level.
    let mut rec = MonitorRecord::new();
    for t in 1..=4u64 {
        rec.push(Aggregation {
            at: sec(t),
            regions: vec![RegionInfo {
                range: AddrRange::new(0, 8 << 20),
                nr_accesses: (t % 3) as u32,
                age: 1,
            }],
            max_nr_accesses: 3,
            aggregation_interval: ms(100),
        });
    }
    let hm = Heatmap::from_record(&rec, AddrRange::new(0, 8 << 20), 4, 4).unwrap();
    rt_text(&hm);
}
