//! Subcommand implementations.

use std::fs;
use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

use daos::{
    biggest_active_span, record_from_csv, record_to_csv, run, run_observed, score_inputs,
    score_vs_baseline, DaosError, FleetSpec, Heatmap, MonitorKind, Normalized, RunConfig,
    RunResult, Session, WssReport,
};
use daos_obs::{
    Dashboard, EpochPublisher, FleetPublisher, ObsConfig, ObsServer, ObsSnapshot, Publisher,
};
use daos_mm::clock::sec;
use daos_mm::SwapConfig;
use daos_schemes::{parse_scheme_line, parse_schemes};
use daos_tuner::{tune as tuner_tune, DefaultScore, ScoreFn, TunerConfig};
use daos_workloads::{by_path, paper_suite, FleetConfig};

use crate::args::Args;

fn lookup(args: &Args) -> Result<daos_workloads::WorkloadSpec, DaosError> {
    let name = args
        .pos(0)
        .ok_or_else(|| DaosError::usage("missing workload argument (see `daos list`)"))?;
    by_path(name)
        .ok_or_else(|| DaosError::usage(format!("unknown workload '{name}' (see `daos list`)")))
}

/// One of the paper's named configurations, by plot name.
fn named_config(name: &str) -> Result<RunConfig, DaosError> {
    Ok(match name {
        "baseline" => RunConfig::baseline(),
        "rec" => RunConfig::rec(),
        "prec" => RunConfig::prec(),
        "thp" => RunConfig::thp(),
        "ethp" => RunConfig::ethp(),
        "prcl" => RunConfig::prcl(),
        "damon_reclaim" => RunConfig::damon_reclaim(),
        other => {
            return Err(DaosError::usage(format!(
                "unknown config '{other}' (baseline | rec | prec | thp | ethp | prcl | damon_reclaim)"
            )))
        }
    })
}

/// `daos list`
pub fn list() -> Result<(), DaosError> {
    println!("{:<26} {:>9} {:>10}  behaviour", "workload", "footprint", "epochs");
    for spec in paper_suite() {
        println!(
            "{:<26} {:>6} MiB {:>10}  {}",
            spec.path_name(),
            spec.footprint >> 20,
            spec.nr_epochs,
            spec.behavior.kind_name(),
        );
    }
    Ok(())
}

/// `daos record <workload>`
pub fn record(args: &Args) -> Result<(), DaosError> {
    let spec = lookup(args)?;
    let machine = args.machine()?;
    let config = if args.flag("paddr") { RunConfig::prec() } else { RunConfig::rec() };
    println!(
        "recording {} on {} ({} monitoring)...",
        spec.path_name(),
        machine.name,
        if args.flag("paddr") { "physical-address" } else { "virtual-address" }
    );
    let result = run(&machine, &config, &spec, args.seed()?)?;
    let record = result.record.as_ref().expect("recording config");
    let out = args.opt("out").unwrap_or("daos.record.csv");
    fs::write(out, record_to_csv(record)).map_err(|e| DaosError::io(out, e))?;
    println!(
        "wrote {} aggregation windows ({:.0}s of monitoring) to {out}",
        record.len(),
        result.runtime_ns as f64 / 1e9
    );
    println!(
        "monitoring cost: {:.2}% of one CPU, {:.2}% workload slowdown",
        result.monitor_cpu_share() * 100.0,
        100.0 * result.stats.monitor_interference_ns as f64 / result.runtime_ns as f64
    );
    Ok(())
}

/// True when `text` looks like a trace export (JSONL, possibly with the
/// `# daos-trace` header) rather than a record CSV.
fn looks_like_trace(text: &str) -> bool {
    let head = text.trim_start();
    head.starts_with('#') || head.starts_with('{')
}

/// Load a record from `args.pos(0)` — either a record CSV (from
/// `daos record`) or a trace export (from `daos trace`), sniffed by
/// content so every report subcommand accepts both.
fn load_record(args: &Args) -> Result<daos_monitor::MonitorRecord, DaosError> {
    let path = args.pos(0).ok_or_else(|| DaosError::usage("missing record file argument"))?;
    let text = fs::read_to_string(path).map_err(|e| DaosError::io(path, e))?;
    if looks_like_trace(&text) {
        let doc = daos_trace::parse_export(&text)?;
        warn_if_truncated(&doc);
        Ok(daos_report::record_from_doc(&doc))
    } else {
        Ok(record_from_csv(&text)?)
    }
}

/// Load a trace document from `args.pos(0)` (trace-only subcommands).
fn load_doc(args: &Args) -> Result<daos_trace::TraceDoc, DaosError> {
    let path = args.pos(0).ok_or_else(|| DaosError::usage("missing trace file argument"))?;
    let text = fs::read_to_string(path).map_err(|e| DaosError::io(path, e))?;
    if !looks_like_trace(&text) {
        return Err(DaosError::usage(format!(
            "{path} is not a trace export (expected JSONL from `daos trace`)"
        )));
    }
    Ok(daos_trace::parse_export(&text)?)
}

fn warn_if_truncated(doc: &daos_trace::TraceDoc) {
    if doc.dropped > 0 {
        eprintln!(
            "warning: trace is incomplete — {} events were dropped by a ring of {}; \
             derived views cover only the surviving window",
            doc.dropped, doc.ring_capacity
        );
    }
}

/// `daos report heatmap <FILE>`
pub fn report_heatmap(args: &Args) -> Result<(), DaosError> {
    let record = load_record(args)?;
    let span = biggest_active_span(&record)
        .ok_or_else(|| DaosError::usage("record shows no activity"))?;
    let rows: usize = args.opt_num("rows", 16)?;
    let cols: usize = args.opt_num("cols", 72)?;
    let hm = Heatmap::from_record(&record, span, cols, rows)
        .ok_or_else(|| DaosError::usage("empty record"))?;
    if args.flag("json") {
        use daos_util::json::ToJson;
        println!("{}", hm.to_json().to_string_compact());
        return Ok(());
    }
    print!("{}", hm.render_ascii());
    println!(
        "x: {:.0}..{:.0}s   y: {}..{} MiB",
        hm.time_span.0 as f64 / 1e9,
        hm.time_span.1 as f64 / 1e9,
        span.start >> 20,
        span.end >> 20
    );
    Ok(())
}

/// `daos report wss <FILE>`: the time series when the input is a trace,
/// the distribution alone for a record CSV (which has no better view).
pub fn report_wss(args: &Args) -> Result<(), DaosError> {
    let record = load_record(args)?;
    let tl = daos_report::WssTimeline::from_record(&record);
    if args.flag("json") {
        use daos_util::json::ToJson;
        println!("{}", tl.to_json().to_string_compact());
        return Ok(());
    }
    if args.flag("distribution") {
        print!("{}", WssReport::from_record(&record).render());
    } else {
        print!("{}", tl.render());
    }
    Ok(())
}

/// `daos report summary <TRACE>`
pub fn report_summary(args: &Args) -> Result<(), DaosError> {
    let doc = load_doc(args)?;
    print!("{}", daos_report::Summary::of(&doc).render());
    Ok(())
}

/// `daos report schemes <TRACE>`
pub fn report_schemes(args: &Args) -> Result<(), DaosError> {
    let doc = load_doc(args)?;
    warn_if_truncated(&doc);
    if args.flag("json") {
        use daos_util::json::ToJson;
        println!(
            "{}",
            daos_report::scheme_timelines(&doc.events).to_json().to_string_compact()
        );
        return Ok(());
    }
    print!("{}", daos_report::schemes::render_all(&doc));
    Ok(())
}

/// `daos report profile <TRACE>`
pub fn report_profile(args: &Args) -> Result<(), DaosError> {
    let doc = load_doc(args)?;
    warn_if_truncated(&doc);
    print!("{}", daos_report::Profile::of(&doc).render());
    Ok(())
}

/// `daos schemes <workload> --schemes-file FILE | --scheme LINE`
pub fn schemes(args: &Args) -> Result<(), DaosError> {
    let spec = lookup(args)?;
    let machine = args.machine()?;
    let schemes = match (args.opt("schemes-file"), args.opt("scheme")) {
        (Some(path), _) => {
            let text = fs::read_to_string(path).map_err(|e| DaosError::io(path, e))?;
            parse_schemes(&text)?
        }
        (None, Some(line)) => vec![parse_scheme_line(line)?],
        (None, None) => {
            return Err(DaosError::usage("need --schemes-file FILE or --scheme 'LINE'"))
        }
    };
    println!("running {} under {} scheme(s) on {}:", spec.path_name(), schemes.len(), machine.name);
    for s in &schemes {
        println!("  {s}");
    }
    let seed = args.seed()?;
    let baseline = run(&machine, &RunConfig::baseline(), &spec, seed)?;
    let mut config = RunConfig::rec();
    config.name = "schemes".into();
    config.record = false;
    config.schemes = schemes.into_iter().map(Into::into).collect();
    let result = run(&machine, &config, &spec, seed)?;
    let n = Normalized::of(&baseline, &result);
    println!("\nruntime: {:.1}s (baseline {:.1}s, {:+.2}% change)",
        result.runtime_ns as f64 / 1e9,
        baseline.runtime_ns as f64 / 1e9,
        n.slowdown_pct());
    println!("avg RSS: {} MiB (baseline {} MiB, {:.1}% saved)",
        result.avg_rss >> 20,
        baseline.avg_rss >> 20,
        n.memory_saving_pct());
    println!("score (Listing 2): {:.2}", score_vs_baseline(&baseline, &result));
    for (i, st) in result.scheme_stats.iter().enumerate() {
        println!(
            "scheme {i}: tried {} regions / {} MiB, applied {} / {} MiB",
            st.nr_tried,
            st.sz_tried >> 20,
            st.nr_applied,
            st.sz_applied >> 20
        );
    }
    Ok(())
}

/// The obs server tuning selected by `--obs-workers` (0 = auto-size
/// from the machine's parallelism; the other knobs keep their
/// defaults).
fn obs_config(args: &Args) -> Result<ObsConfig, DaosError> {
    let workers: usize = args.opt_num("obs-workers", 0)?;
    Ok(ObsConfig { workers, ..ObsConfig::default() })
}

/// Bind the observability server on `addr`, run the workload with an
/// [`EpochPublisher`] attached, and publish the final snapshot. The
/// caller installs (and takes back) the trace collector; when one is
/// installed the published snapshots carry its registry and ring tail.
fn run_serving(
    addr: &str,
    machine: &daos_mm::MachineProfile,
    config: &RunConfig,
    spec: &daos_workloads::WorkloadSpec,
    seed: u64,
    publish_every: u64,
    obs_cfg: ObsConfig,
) -> Result<(RunResult, ObsServer), DaosError> {
    let publisher = Publisher::new();
    let server = ObsServer::bind_with(addr, publisher.clone(), obs_cfg)
        .map_err(|e| DaosError::io(addr, e))?;
    println!("serving observability on {}", server.addr());
    let mut obs = EpochPublisher::new(
        publisher,
        &config.name,
        &spec.path_name(),
        &machine.name,
        publish_every,
    );
    let result = run_observed(machine, config, spec, seed, Some(&mut obs))?;
    obs.finalize(&result);
    Ok((result, server))
}

/// With `--linger`, keep the endpoint serving the final snapshot until
/// the process is killed (how `scripts/verify.sh` probes a live server).
fn maybe_linger(args: &Args, server: &ObsServer) {
    if !args.flag("linger") {
        return;
    }
    println!("run complete; serving final snapshot on {} until killed", server.addr());
    loop {
        thread::sleep(Duration::from_secs(3600));
    }
}

/// Warn about trace-ring overflow at most once per run, with the final
/// dropped count. Publish/export paths may observe the ring many times
/// while it keeps overwriting; warning at each observation would repeat
/// the message with stale intermediate numbers.
fn warn_ring_overflow_once(warned: &mut bool, dropped: u64, capacity: usize) {
    if dropped == 0 || *warned {
        return;
    }
    *warned = true;
    eprintln!(
        "warning: ring overflowed — {dropped} events dropped (capacity {capacity}); \
         re-run with a larger --ring to keep the full stream"
    );
}

fn print_run_summary(result: &RunResult) {
    println!(
        "ran {} under '{}' on {}: {:.1}s virtual runtime, avg RSS {} MiB, peak {} MiB",
        result.workload,
        result.config,
        result.machine,
        result.runtime_ns as f64 / 1e9,
        result.avg_rss >> 20,
        result.peak_rss >> 20,
    );
    if result.overhead.is_some() {
        println!("monitoring cost: {:.2}% of one CPU", result.monitor_cpu_share() * 100.0);
    }
    for (i, st) in result.scheme_stats.iter().enumerate() {
        println!(
            "scheme {i}: tried {} regions / {} MiB, applied {} / {} MiB",
            st.nr_tried,
            st.sz_tried >> 20,
            st.nr_applied,
            st.sz_applied >> 20
        );
    }
}

/// `daos run <workload>`: one configuration, summarised. With
/// `--serve ADDR` the run also exposes the live observability endpoint
/// (`/metrics`, `/snapshot`, `/events`, `/healthz`); without it, no
/// publisher, server thread or collector is ever constructed — the run
/// loop's observation hook stays a single untaken branch.
pub fn run_cmd(args: &Args) -> Result<(), DaosError> {
    let mut spec = lookup(args)?;
    let machine = args.machine()?;
    let seed = args.seed()?;
    let config = named_config(args.opt("config").unwrap_or("prcl"))?;
    let epochs: u64 = args.opt_num("epochs", spec.nr_epochs)?;
    spec.nr_epochs = epochs.min(spec.nr_epochs);

    let Some(addr) = args.opt("serve") else {
        let result = run(&machine, &config, &spec, seed)?;
        print_run_summary(&result);
        return Ok(());
    };

    // Serving implies telemetry: install a collector so `/metrics` and
    // `/events` have a registry and ring to publish.
    let ring: usize = args.opt_num("ring", daos_trace::DEFAULT_RING_CAPACITY)?;
    let publish_every: u64 = args.opt_num("publish-every", 1)?;
    daos_trace::install(daos_trace::Collector::builder().ring_capacity(ring).build()?)?;
    let served =
        run_serving(addr, &machine, &config, &spec, seed, publish_every, obs_config(args)?);
    let collector = daos_trace::take().expect("collector installed above");
    let (result, server) = served?;
    print_run_summary(&result);
    let mut warned = false;
    warn_ring_overflow_once(&mut warned, collector.ring().dropped(), collector.ring().capacity());
    maybe_linger(args, &server);
    Ok(())
}

fn show_frame(dash: &mut Dashboard, snap: &ObsSnapshot, plain: bool) {
    let frame = dash.frame(snap);
    if plain {
        print!("{frame}");
    } else {
        // ANSI clear-screen + cursor-home, then the fresh frame.
        print!("\x1b[2J\x1b[H{frame}");
    }
    use std::io::Write;
    let _ = std::io::stdout().flush();
}

/// `daos top <ADDR | workload>`: live dashboard. A `host:port` argument
/// attaches to a running `--serve` endpoint over `/snapshot`; a workload
/// name runs it in-process and watches it live.
pub fn top(args: &Args) -> Result<(), DaosError> {
    let target = args.pos(0).ok_or_else(|| {
        DaosError::usage("daos top needs an ADDR (host:port) or a workload (see `daos list`)")
    })?;
    let refresh = Duration::from_millis(args.opt_num("refresh", 500u64)?);
    let iterations: u64 = args.opt_num("iterations", 0)?; // 0 = until the run finishes
    let plain = args.flag("plain");
    match target.parse::<SocketAddr>() {
        Ok(addr) => top_remote(addr, refresh, iterations, plain),
        Err(_) => top_inprocess(args, refresh, iterations, plain),
    }
}

/// Pull the retained WSS series from `/query` so the first remote frame
/// shows a full sparkline. Best-effort: older servers without the
/// endpoint (or an empty history) just start cold.
fn backfill_wss(dash: &mut Dashboard, addr: SocketAddr) {
    use daos_util::json::Json;
    let Ok(resp) = daos_obs::http::http_get(
        addr,
        "/query?metric=daos_obs_wss_bytes&agg=last",
        Duration::from_secs(5),
    ) else {
        return;
    };
    if resp.status != 200 {
        return;
    }
    let Ok(v) = daos_util::json::parse(&resp.body) else { return };
    let Some(Json::Array(points)) = v.get("points") else { return };
    let values: Vec<u64> = points
        .iter()
        .filter_map(|p| match p {
            Json::Array(pair) if pair.len() == 2 => match pair[1] {
                Json::F64(v) if v >= 0.0 => Some(v as u64),
                Json::U64(v) => Some(v),
                _ => None,
            },
            _ => None,
        })
        .collect();
    dash.backfill(&values);
}

fn top_remote(
    addr: SocketAddr,
    refresh: Duration,
    iterations: u64,
    plain: bool,
) -> Result<(), DaosError> {
    use daos_util::json::FromJson;
    let mut dash = Dashboard::new();
    backfill_wss(&mut dash, addr);
    let mut shown = 0u64;
    loop {
        let resp = daos_obs::http::http_get(addr, "/snapshot", Duration::from_secs(5))
            .map_err(|e| DaosError::io(addr.to_string(), e))?;
        if resp.status != 200 {
            return Err(DaosError::usage(format!(
                "GET /snapshot from {addr} returned status {}",
                resp.status
            )));
        }
        let snap = ObsSnapshot::from_json(&daos_util::json::parse(&resp.body)?)?;
        show_frame(&mut dash, &snap, plain);
        shown += 1;
        if snap.finished || (iterations > 0 && shown >= iterations) {
            return Ok(());
        }
        thread::sleep(refresh);
    }
}

fn top_inprocess(
    args: &Args,
    refresh: Duration,
    iterations: u64,
    plain: bool,
) -> Result<(), DaosError> {
    let mut spec = lookup(args)?;
    let machine = args.machine()?;
    let seed = args.seed()?;
    let config = named_config(args.opt("config").unwrap_or("prcl"))?;
    let epochs: u64 = args.opt_num("epochs", spec.nr_epochs)?;
    spec.nr_epochs = epochs.min(spec.nr_epochs);
    let ring: usize = args.opt_num("ring", daos_trace::DEFAULT_RING_CAPACITY)?;
    let publish_every: u64 = args.opt_num("publish-every", 1)?;

    let publisher = Publisher::new();
    let worker = {
        let publisher = publisher.clone();
        thread::spawn(move || -> Result<(), DaosError> {
            // The collector is thread-local: install on the run thread so
            // the publisher snapshots this run's registry and ring.
            daos_trace::install(
                daos_trace::Collector::builder().ring_capacity(ring).build()?,
            )?;
            let mut obs = EpochPublisher::new(
                publisher.clone(),
                &config.name,
                &spec.path_name(),
                &machine.name,
                publish_every,
            );
            let run_result = run_observed(&machine, &config, &spec, seed, Some(&mut obs));
            let outcome = match run_result {
                Ok(result) => {
                    obs.finalize(&result);
                    Ok(())
                }
                Err(e) => {
                    // Unblock the dashboard loop on failure too.
                    publisher.finish();
                    Err(DaosError::from(e))
                }
            };
            daos_trace::take();
            outcome
        })
    };

    let mut dash = Dashboard::new();
    let mut shown = 0u64;
    loop {
        let finished = publisher.is_finished();
        let snap = publisher.snapshot();
        if snap.seq > 0 {
            show_frame(&mut dash, &snap, plain);
            shown += 1;
        }
        if finished || (iterations > 0 && shown >= iterations) {
            break;
        }
        thread::sleep(refresh);
    }
    worker.join().map_err(|_| DaosError::usage("run thread panicked"))??;
    // One last frame so the DONE state is what remains on screen.
    let snap = publisher.snapshot();
    if snap.seq > 0 {
        show_frame(&mut dash, &snap, plain);
    }
    Ok(())
}

/// `daos alerts <ADDR>`: one-shot view of a `--serve` endpoint's alert
/// rules — fetches `/alerts` and renders a state table.
pub fn alerts(args: &Args) -> Result<(), DaosError> {
    use daos_util::json::Json;
    let target = args
        .pos(0)
        .ok_or_else(|| DaosError::usage("daos alerts needs an ADDR (host:port)"))?;
    let addr: SocketAddr = target
        .parse()
        .map_err(|_| DaosError::usage(format!("'{target}' is not a host:port address")))?;
    let resp = daos_obs::http::http_get(addr, "/alerts", Duration::from_secs(5))
        .map_err(|e| DaosError::io(addr.to_string(), e))?;
    if resp.status != 200 {
        return Err(DaosError::usage(format!(
            "GET /alerts from {addr} returned status {}",
            resp.status
        )));
    }
    let Json::Array(rules) = daos_util::json::parse(&resp.body)? else {
        return Err(DaosError::usage(format!("/alerts did not return a JSON array: {}", resp.body)));
    };
    if rules.is_empty() {
        println!("no alert rules installed at {addr}");
        return Ok(());
    }
    println!(
        "{:<28} {:<9} {:<36} {:>10} {:<8} {:>5} {:>11} {:>12}",
        "rule", "kind", "metric", "threshold", "state", "for", "transitions", "value"
    );
    for rule in &rules {
        let s = |k: &str| rule.field::<String>(k).unwrap_or_default();
        let n = |k: &str| rule.field::<u64>(k).unwrap_or(0);
        let value = match rule.get("value") {
            Some(Json::F64(v)) => format!("{v:.3}"),
            Some(Json::U64(v)) => format!("{v}"),
            _ => "-".into(),
        };
        let threshold = rule
            .get("threshold")
            .and_then(|t| match t {
                Json::F64(v) => Some(format!("{v:.3}")),
                Json::U64(v) => Some(format!("{v}")),
                _ => None,
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<28} {:<9} {:<36} {:>10} {:<8} {:>5} {:>11} {:>12}",
            s("rule"),
            s("kind"),
            s("metric"),
            threshold,
            s("state"),
            n("for_samples"),
            n("transitions"),
            value,
        );
    }
    Ok(())
}

/// `daos trace <workload>`: run a workload with the telemetry collector
/// installed and emit the event stream as JSONL (stdout or `--out`).
/// With `--serve ADDR`, also expose the live observability endpoint for
/// the duration of the run.
pub fn trace(args: &Args) -> Result<(), DaosError> {
    let mut spec = lookup(args)?;
    let machine = args.machine()?;
    let seed = args.seed()?;
    let config = named_config(args.opt("config").unwrap_or("prcl"))?;
    let ring: usize = args.opt_num("ring", daos_trace::DEFAULT_RING_CAPACITY)?;
    let epochs: u64 = args.opt_num("epochs", spec.nr_epochs)?;
    spec.nr_epochs = epochs.min(spec.nr_epochs);

    daos_trace::install(daos_trace::Collector::builder().ring_capacity(ring).build()?)?;
    // Take the collector back even if the run fails, so a retry in the
    // same process does not hit AlreadyInstalled.
    let mut server = None;
    let run_result = match args.opt("serve") {
        None => run(&machine, &config, &spec, seed).map_err(DaosError::from),
        Some(addr) => {
            let publish_every: u64 = args.opt_num("publish-every", 1)?;
            run_serving(addr, &machine, &config, &spec, seed, publish_every, obs_config(args)?)
                .map(
                |(result, srv)| {
                    server = Some(srv);
                    result
                },
            )
        }
    };
    let collector = daos_trace::take().expect("collector installed above");
    let result = run_result?;

    let jsonl = daos_trace::export_collector(&collector);
    // One warning per run, with the final count (not one per export or
    // per publish interval).
    let mut ring_warned = false;
    warn_ring_overflow_once(
        &mut ring_warned,
        collector.ring().dropped(),
        collector.ring().capacity(),
    );
    match args.opt("out") {
        Some(path) => {
            fs::write(path, &jsonl).map_err(|e| DaosError::io(path, e))?;
            println!(
                "traced {} under '{}': {} events ({} dropped) over {:.1}s -> {path}",
                spec.path_name(),
                config.name,
                collector.events().len(),
                collector.ring().dropped(),
                result.runtime_ns as f64 / 1e9,
            );
            if let Some(h) = collector.registry().hist(daos_trace::keys::MONITOR_CHECKS_PER_TICK)
            {
                println!(
                    "monitor: {} ticks, max {} checks/tick (bound {})",
                    h.count(),
                    h.max(),
                    2 * config.attrs.max_nr_regions
                );
            }
        }
        // Bare `daos trace` streams the JSONL itself, pipeline-friendly.
        None => print!("{jsonl}"),
    }
    if let Some(server) = &server {
        maybe_linger(args, server);
    }
    Ok(())
}

/// `daos tune <workload>`
pub fn tune(args: &Args) -> Result<(), DaosError> {
    let spec = lookup(args)?;
    let machine = args.machine()?;
    let seed = args.seed()?;
    let range_str = args.opt("range").unwrap_or("0:60");
    let (lo, hi) = range_str
        .split_once(':')
        .and_then(|(a, b)| Some((a.parse::<f64>().ok()?, b.parse::<f64>().ok()?)))
        .ok_or_else(|| DaosError::usage(format!("bad --range '{range_str}' (expected LO:HI)")))?;
    let samples: u64 = args.opt_num("samples", 10)?;

    println!(
        "tuning prcl min_age over [{lo}, {hi}]s for {} on {} ({samples} samples)...",
        spec.path_name(),
        machine.name
    );
    let baseline = run(&machine, &RunConfig::baseline(), &spec, seed)?;
    let mut score_fn = DefaultScore::default();
    let cfg = TunerConfig {
        time_limit: sec(samples * 10),
        unit_work_time: sec(10),
        range: (lo, hi),
        seed,
    };
    let result = tuner_tune(&cfg, |min_age| {
        let r = run(
            &machine,
            &RunConfig::prcl_with_min_age((min_age * 1e9) as u64),
            &spec,
            seed,
        )
        .expect("sample run");
        let s = score_fn.score(&score_inputs(&baseline, &r));
        println!("  min_age {min_age:>6.1}s -> score {s:>8.2}");
        s
    });
    println!("\nbest threshold: min_age {:.1}s (estimated score {:.2})", result.best_x, result.best_score);
    let tuned = run(
        &machine,
        &RunConfig::prcl_with_min_age((result.best_x * 1e9) as u64),
        &spec,
        seed,
    )?;
    let n = Normalized::of(&baseline, &tuned);
    println!(
        "validated: {:.1}% memory saving at {:+.2}% runtime change (score {:.2})",
        n.memory_saving_pct(),
        n.slowdown_pct(),
        score_vs_baseline(&baseline, &tuned)
    );
    Ok(())
}

/// `daos fleet`: the §4.4 serverless production scenario at fleet
/// scale. One serverless worker spec is replicated `--processes` times
/// under the sharded work-stealing engine (the [`Session`] API), with
/// physical-address monitoring under a fleet-wide region budget and the
/// paper's pageout scheme applied batched per shard. Prints the fleet
/// summary: per-tenant aggregates, monitoring overhead per process, and
/// per-process trace-ring drop counts (with `--ring`). With
/// `--serve ADDR` the run publishes one snapshot per fleet, whose
/// `/metrics` exposition carries per-tenant label families.
pub fn fleet(args: &Args) -> Result<(), DaosError> {
    let machine = args.machine()?;
    let swap = match args.opt("swap").unwrap_or("zram") {
        "zram" => SwapConfig::Zram { capacity_bytes: 256 << 20, compression_ratio: 9.0 },
        "file" => SwapConfig::File { capacity_bytes: 1 << 30 },
        "none" => SwapConfig::None,
        other => {
            return Err(DaosError::usage(format!("unknown swap '{other}' (zram | file | none)")))
        }
    };
    let min_age: u64 = args.opt_num("min-age", 30)?;
    let processes: usize = args.opt_num("processes", 256)?;
    let epochs: u64 = args.opt_num("epochs", 60)?;
    let shard_size: usize = args.opt_num("shard-size", 32)?;
    let workers: usize = args.opt_num("workers", 0)?;
    let tenants: usize = args.opt_num("tenants", 4)?;
    let fleet_cfg = FleetConfig::default();
    let footprint: u64 = args.opt_num("footprint", fleet_cfg.worker_footprint >> 20)?;
    let seed = args.seed()?;

    // The production configuration: physical-address monitoring feeding
    // the pageout scheme, unless --config picks a named paper config.
    let config = match args.opt("config") {
        Some(name) => {
            let mut c = named_config(name)?;
            c.swap = swap;
            c
        }
        None => RunConfig::builder("fleet-prcl")
            .monitor(MonitorKind::Paddr)
            .scheme(parse_scheme_line(&format!("min max min min {min_age}s max pageout"))?)
            .swap(swap)
            .build()?,
    };
    let spec = FleetConfig { worker_footprint: footprint << 20, ..fleet_cfg }.worker_spec(epochs);

    let mut fleet_spec =
        FleetSpec::new(processes).shard_size(shard_size).workers(workers).tenants(tenants);
    let ring: usize = args.opt_num("ring", 0)?;
    if ring > 0 {
        fleet_spec = fleet_spec.trace_ring(ring);
    }

    println!(
        "fleet: {processes} serverless workers x {epochs} epochs under '{}' on {} \
         ({} shards, {tenants} tenants, {:?})...",
        config.name,
        machine.name,
        fleet_spec.nr_shards(),
        config.swap,
    );

    let session = Session::new(&machine, &config, &spec).seed(seed);
    let (summary, server) = match args.opt("serve") {
        None => {
            let result = session.fleet(fleet_spec).execute()?;
            (result.fleet.expect("fleet session carries a summary"), None)
        }
        Some(addr) => {
            let publish_every: u64 = args.opt_num("publish-every", 1)?;
            let publisher = Publisher::new();
            let server = ObsServer::bind_with(addr, publisher.clone(), obs_config(args)?)
                .map_err(|e| DaosError::io(addr, e))?;
            println!("serving observability on {}", server.addr());
            let mut obs = FleetPublisher::new(
                publisher,
                &config.name,
                &spec.path_name(),
                &machine.name,
                publish_every,
            );
            let result = session.fleet(fleet_spec).fleet_observer(&mut obs).execute()?;
            let summary = result.fleet.expect("fleet session carries a summary");
            obs.finalize(&summary);
            (summary, Some(server))
        }
    };
    print!("{}", summary.render());
    if let Some(server) = &server {
        maybe_linger(args, server);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn list_prints_suite() {
        assert!(list().is_ok());
    }

    #[test]
    fn lookup_errors_are_friendly() {
        let err = lookup(&args("parsec3/quake")).unwrap_err();
        assert!(err.to_string().contains("unknown workload"));
        let err = lookup(&args("")).unwrap_err();
        assert!(err.to_string().contains("missing workload"));
    }

    #[test]
    fn report_on_missing_file_errors() {
        let err = report_wss(&args("/no/such/file.rec")).unwrap_err();
        assert!(err.to_string().contains("file.rec"));
        let err = report_heatmap(&args("/no/such/file.rec")).unwrap_err();
        assert!(err.to_string().contains("file.rec"));
    }

    #[test]
    fn reports_work_on_a_real_record_file() {
        // Build a small record via the library, write it, report on it.
        let spec = daos_workloads::WorkloadSpec {
            name: "cli-test",
            suite: daos_workloads::Suite::Parsec3,
            footprint: 8 << 20,
            nr_epochs: 600,
            compute_ns: 1_000_000,
            behavior: daos_workloads::Behavior::CompactHot {
                hot_frac: 0.25,
                apc: 4.0,
                cold_touch_prob: 0.0,
            },
        };
        let machine = daos_mm::MachineProfile::i3_metal();
        let result = run(&machine, &RunConfig::rec(), &spec, 1).unwrap();
        let path = std::env::temp_dir().join("daos_cli_test.rec");
        fs::write(&path, record_to_csv(result.record.as_ref().unwrap())).unwrap();
        let path_str = path.to_str().unwrap();

        assert!(report_wss(&args(path_str)).is_ok());
        assert!(report_heatmap(&args(&format!("{path_str} --rows 6 --cols 20"))).is_ok());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn schemes_requires_a_scheme_source() {
        let err = schemes(&args("parsec3/freqmine")).unwrap_err();
        assert!(err.to_string().contains("--schemes-file"));
        let err = schemes(&args("parsec3/freqmine --scheme bogus")).unwrap_err();
        assert!(err.to_string().contains("expected 7 fields"));
    }

    #[test]
    fn trace_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join("daos_cli_trace_test.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        trace(&args(&format!(
            "parsec3/freqmine --config rec --epochs 40 --out {path_str}"
        )))
        .unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let events = daos_trace::events_from_jsonl(&text).unwrap();
        assert!(!events.is_empty(), "trace produced no events");
        let _ = fs::remove_file(&path);

        let err = trace(&args("parsec3/freqmine --config warp9")).unwrap_err();
        assert!(err.to_string().contains("unknown config"));
    }

    #[test]
    fn reports_work_on_a_trace_file() {
        // Record a trace, then drive every report subcommand from it.
        let path = std::env::temp_dir().join("daos_cli_report_trace.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        trace(&args(&format!(
            "parsec3/freqmine --config prcl --epochs 60 --out {path_str}"
        )))
        .unwrap();

        assert!(report_wss(&args(&path_str)).is_ok());
        assert!(report_wss(&args(&format!("{path_str} --distribution"))).is_ok());
        assert!(report_heatmap(&args(&format!("{path_str} --rows 6 --cols 20"))).is_ok());
        assert!(report_heatmap(&args(&format!("{path_str} --json"))).is_ok());
        assert!(report_summary(&args(&path_str)).is_ok());
        assert!(report_schemes(&args(&path_str)).is_ok());
        assert!(report_profile(&args(&path_str)).is_ok());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn trace_only_reports_reject_csv() {
        let path = std::env::temp_dir().join("daos_cli_not_a_trace.csv");
        fs::write(&path, daos::RECORD_HEADER).unwrap();
        let path_str = path.to_str().unwrap().to_string();
        let err = report_summary(&args(&path_str)).unwrap_err();
        assert!(err.to_string().contains("not a trace export"), "{err}");
        let err = report_profile(&args(&path_str)).unwrap_err();
        assert!(err.to_string().contains("not a trace export"), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fleet_rejects_unknown_swap() {
        let err = fleet(&args("--swap tape")).unwrap_err();
        assert!(err.to_string().contains("unknown swap"));
    }

    #[test]
    fn fleet_small_run_succeeds() {
        // The smallest interesting fleet: two shards, a tiny trace ring
        // (so the drop path is exercised) and a named config override.
        fleet(&args("--processes 4 --epochs 6 --shard-size 2 --tenants 2 --ring 32")).unwrap();
        fleet(&args("--processes 2 --epochs 4 --config prcl --swap none")).unwrap();
        let err = fleet(&args("--config warp9")).unwrap_err();
        assert!(err.to_string().contains("unknown config"));
    }

    #[test]
    fn tune_range_parsing() {
        let err = tune(&args("parsec3/freqmine --range backwards")).unwrap_err();
        assert!(err.to_string().contains("--range"));
    }
}
