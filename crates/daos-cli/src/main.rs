//! `daos` — the user-space tool of the reproduction, in the spirit of the
//! upstream `damo` utility: record access patterns, render reports, run
//! schemes, auto-tune them, and drive the production-fleet scenario.

use daos::DaosError;
use daos_cli::args::Args;
use daos_cli::commands;

const USAGE: &str = "\
daos — data access-aware memory management (paper reproduction tool)

USAGE:
    daos <SUBCOMMAND> [ARGS]

SUBCOMMANDS:
    list                      list the available workload analogs
    run <workload>            run one configuration and print a summary
        [--config baseline|rec|prec|thp|ethp|prcl|damon_reclaim]
        [--machine i3|m5d|z1d] [--seed N] [--epochs N]
        [--serve ADDR]        expose live /metrics /snapshot /events
                              /healthz /statusz /query /alerts while
                              the run executes
        [--publish-every N] [--ring N] [--linger] [--obs-workers N]
    top <ADDR | workload>     live dashboard (WSS sparkline, hottest
        regions, scheme state, span latencies); ADDR attaches to a
        --serve endpoint, a workload name runs it in-process
        [--refresh MS] [--iterations N] [--plain] [--config ...]
    alerts <ADDR>             one-shot alert-rule state table from a
        --serve endpoint's /alerts (threshold and rate rules, with
        hysteresis state and transition counts)
    record <workload>         monitor a workload, write a record file
        [--machine i3|m5d|z1d] [--paddr] [--seed N] [--out FILE]
    report heatmap <FILE>     render a record or trace as an ASCII heatmap
        [--rows N] [--cols N] [--json]
    report wss <FILE>         working-set-size series + percentiles of a
        record or trace [--distribution] [--json]
    report summary <TRACE>    event counts, drop accounting and metrics
        integrity of a trace
    report schemes <TRACE>    per-scheme apply timeline (tried/applied,
        quota throttling, watermark windows) [--json]
    report profile <TRACE>    per-phase span latency percentiles and the
        overhead cross-check
    schemes <workload>        run a workload under a scheme file
        (--schemes-file FILE | --scheme 'LINE') [--machine ...] [--seed N]
    trace <workload>          run with the telemetry collector and emit
        the event stream as JSONL (stdout, or --out FILE with a summary)
        [--config baseline|rec|prec|thp|ethp|prcl|damon_reclaim]
        [--ring N] [--epochs N] [--machine ...] [--seed N] [--out FILE]
        [--serve ADDR] [--publish-every N] [--linger] [--obs-workers N]
    tune <workload>           auto-tune the prcl scheme's min_age
        [--range LO:HI] [--samples N] [--machine ...] [--seed N]
    fleet                     the serverless production scenario at
        scale: N worker processes under the sharded work-stealing
        monitoring engine, with per-tenant aggregation
        [--processes N] [--epochs N] [--shard-size N] [--workers N]
        [--tenants N] [--footprint MIB] [--ring N]
        [--config baseline|rec|prec|thp|ethp|prcl|damon_reclaim]
        [--swap zram|file|none] [--min-age SECONDS]
        [--machine i3|m5d|z1d] [--seed N]
        [--serve ADDR] [--publish-every N] [--linger] [--obs-workers N]

Every command is deterministic under a fixed --seed.
";

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "-h" || raw[0] == "help" {
        print!("{USAGE}");
        return;
    }
    let sub = raw.remove(0);
    let result = (|| -> Result<(), DaosError> {
        match sub.as_str() {
            "list" => commands::list(),
            "run" => commands::run_cmd(&Args::parse(raw)?),
            "top" => commands::top(&Args::parse(raw)?),
            "alerts" => commands::alerts(&Args::parse(raw)?),
            "record" => commands::record(&Args::parse(raw)?),
            "report" => {
                if raw.is_empty() {
                    return Err(DaosError::usage(
                        "report needs a kind: heatmap | wss | summary | schemes | profile",
                    ));
                }
                let kind = raw.remove(0);
                let args = Args::parse(raw)?;
                match kind.as_str() {
                    "heatmap" => commands::report_heatmap(&args),
                    "wss" => commands::report_wss(&args),
                    "summary" => commands::report_summary(&args),
                    "schemes" => commands::report_schemes(&args),
                    "profile" => commands::report_profile(&args),
                    other => Err(DaosError::usage(format!("unknown report kind '{other}'"))),
                }
            }
            "schemes" => commands::schemes(&Args::parse(raw)?),
            "trace" => commands::trace(&Args::parse(raw)?),
            "tune" => commands::tune(&Args::parse(raw)?),
            "fleet" => commands::fleet(&Args::parse(raw)?),
            other => {
                Err(DaosError::usage(format!("unknown subcommand '{other}'\n\n{USAGE}")))
            }
        }
    })();
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}
