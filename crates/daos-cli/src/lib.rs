//! Library view of the CLI internals so the argument parser and command
//! plumbing are unit-testable (the `daos` binary is a thin shell over
//! these modules).

pub mod args;
pub mod commands;
