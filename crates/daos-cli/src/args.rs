//! Minimal argument parsing: positionals plus `--key value` / `--flag`
//! options, with typed accessors and unknown-option detection.

use std::collections::BTreeMap;

use daos::DaosError;

/// Parsed command-line arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Option keys that take a value (everything else is a boolean flag).
const VALUE_OPTIONS: &[&str] = &[
    "machine", "out", "seed", "rows", "cols", "schemes-file", "scheme", "range", "samples",
    "swap", "min-age", "duration", "config", "ring", "epochs", "serve", "refresh",
    "iterations", "publish-every", "processes", "shard-size", "workers", "tenants",
    "footprint", "obs-workers",
];

impl Args {
    /// Parse raw arguments (without the program/subcommand names).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, DaosError> {
        let mut args = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if VALUE_OPTIONS.contains(&key) {
                    let v = it
                        .next()
                        .ok_or_else(|| DaosError::usage(format!("option --{key} needs a value")))?;
                    args.options.insert(key.to_string(), v);
                } else {
                    args.flags.push(key.to_string());
                }
            } else {
                args.positionals.push(a);
            }
        }
        Ok(args)
    }

    /// The `i`-th positional argument.
    pub fn pos(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(|s| s.as_str())
    }

    /// A string option.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// A parsed numeric option with default.
    pub fn opt_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, DaosError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| DaosError::usage(format!("bad value for --{key}: '{v}'"))),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The machine profile selected by `--machine` (default i3.metal).
    pub fn machine(&self) -> Result<daos_mm::MachineProfile, DaosError> {
        match self.opt("machine").unwrap_or("i3") {
            "i3" | "i3.metal" => Ok(daos_mm::MachineProfile::i3_metal()),
            "m5d" | "m5d.metal" => Ok(daos_mm::MachineProfile::m5d_metal()),
            "z1d" | "z1d.metal" => Ok(daos_mm::MachineProfile::z1d_metal()),
            other => Err(DaosError::usage(format!("unknown machine '{other}' (i3 | m5d | z1d)"))),
        }
    }

    /// The deterministic seed (`--seed`, default 42).
    pub fn seed(&self) -> Result<u64, DaosError> {
        self.opt_num("seed", 42)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn positionals_and_options() {
        let a = parse("parsec3/freqmine --machine z1d --seed 7 --paddr");
        assert_eq!(a.pos(0), Some("parsec3/freqmine"));
        assert_eq!(a.pos(1), None);
        assert_eq!(a.opt("machine"), Some("z1d"));
        assert_eq!(a.seed().unwrap(), 7);
        assert!(a.flag("paddr"));
        assert!(!a.flag("vaddr"));
    }

    #[test]
    fn machine_selection() {
        assert_eq!(parse("--machine m5d").machine().unwrap().name, "m5d.metal");
        assert_eq!(parse("").machine().unwrap().name, "i3.metal");
        assert!(parse("--machine quantum").machine().is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(vec!["--machine".to_string()]).is_err());
    }

    #[test]
    fn numeric_defaults_and_errors() {
        let a = parse("--rows 24");
        assert_eq!(a.opt_num("rows", 16usize).unwrap(), 24);
        assert_eq!(a.opt_num("cols", 72usize).unwrap(), 72);
        let bad = parse("--rows many");
        assert!(bad.opt_num("rows", 16usize).is_err());
    }
}
