//! Virtual memory areas and page-table entries.
//!
//! Each process owns a sorted set of [`Vma`]s. A VMA stores one [`Pte`]
//! per 4 KiB page plus per-2 MiB-chunk THP state. The PTE `accessed` bit is
//! the hardware feature the paper's monitoring primitives read and clear
//! (§3.1: "accessed bits in page table entries").


use crate::addr::{
    huge_align_down, huge_align_up, AddrRange, HUGE_PAGE_SIZE, PAGE_SHIFT, PAGE_SIZE,
};
use crate::frame::FrameId;
use crate::swap::SwapSlot;

/// Backing state of one virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PteState {
    /// Never faulted in (or unmapped by reclaim of a clean page).
    None,
    /// Mapped to a physical frame.
    Resident(FrameId),
    /// Contents live in a swap slot.
    Swapped(SwapSlot),
}

/// One simulated page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Where the page's data lives.
    pub state: PteState,
    /// Hardware accessed ("young") bit — set on every CPU touch, cleared
    /// by the monitor's access checks and by LRU aging.
    pub accessed: bool,
    /// Generation stamp used by the lazy LRU lists to invalidate stale
    /// queue entries; bumped on every map/unmap/list move.
    pub lru_gen: u32,
}

impl Pte {
    const EMPTY: Pte = Pte { state: PteState::None, accessed: false, lru_gen: 0 };

    /// Whether the page occupies a physical frame.
    #[inline]
    pub fn is_resident(&self) -> bool {
        matches!(self.state, PteState::Resident(_))
    }
}

/// Per-VMA transparent-huge-page policy, mirroring
/// `MADV_HUGEPAGE`/`MADV_NOHUGEPAGE` plus the system-wide "always" mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThpMode {
    /// Huge pages are never used for this VMA.
    Never,
    /// The kernel aggressively promotes any 2 MiB-aligned chunk with at
    /// least one resident page (the behaviour Kwon et al. criticise).
    Always,
    /// Promotion happens only when explicitly requested (DAMOS HUGEPAGE).
    Madvise,
}

/// A contiguous virtual mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct Vma {
    /// Byte range covered; always page-aligned.
    pub range: AddrRange,
    /// THP policy for this area.
    pub thp: ThpMode,
    ptes: Vec<Pte>,
    /// Per-aligned-2 MiB-chunk huge flag. Chunk 0 starts at
    /// `huge_align_up(range.start)`.
    huge: Vec<bool>,
}

impl Vma {
    /// Create a VMA over `range` (must be page-aligned and non-empty).
    pub fn new(range: AddrRange, thp: ThpMode) -> Self {
        debug_assert!(range.start.is_multiple_of(PAGE_SIZE) && range.end.is_multiple_of(PAGE_SIZE));
        debug_assert!(!range.is_empty());
        let nr_pages = range.nr_pages() as usize;
        let nr_chunks = Self::nr_aligned_chunks(&range);
        Self {
            range,
            thp,
            ptes: vec![Pte::EMPTY; nr_pages],
            huge: vec![false; nr_chunks],
        }
    }

    fn nr_aligned_chunks(range: &AddrRange) -> usize {
        let start = huge_align_up(range.start);
        let end = huge_align_down(range.end);
        if start >= end {
            0
        } else {
            ((end - start) / HUGE_PAGE_SIZE) as usize
        }
    }

    /// Page index of `addr` within this VMA.
    #[inline]
    fn idx(&self, addr: u64) -> usize {
        debug_assert!(self.range.contains(addr));
        ((addr - self.range.start) >> PAGE_SHIFT) as usize
    }

    /// Shared access to the PTE covering `addr`.
    #[inline]
    pub fn pte(&self, addr: u64) -> &Pte {
        &self.ptes[self.idx(addr)]
    }

    /// Mutable access to the PTE covering `addr`.
    #[inline]
    pub fn pte_mut(&mut self, addr: u64) -> &mut Pte {
        let i = self.idx(addr);
        &mut self.ptes[i]
    }

    /// Number of 4 KiB pages in the VMA.
    #[inline]
    pub fn nr_pages(&self) -> usize {
        self.ptes.len()
    }

    /// Iterate `(page_addr, &pte)` over the whole VMA.
    pub fn iter_ptes(&self) -> impl Iterator<Item = (u64, &Pte)> {
        let start = self.range.start;
        self.ptes
            .iter()
            .enumerate()
            .map(move |(i, p)| (start + (i as u64) * PAGE_SIZE, p))
    }

    /// Number of resident pages (RSS contribution).
    pub fn nr_resident(&self) -> usize {
        self.ptes.iter().filter(|p| p.is_resident()).count()
    }

    // ---- huge-page chunk bookkeeping -------------------------------

    /// Address of the first 2 MiB-aligned chunk, if any fits.
    pub fn first_chunk_addr(&self) -> Option<u64> {
        let start = huge_align_up(self.range.start);
        (start + HUGE_PAGE_SIZE <= self.range.end).then_some(start)
    }

    /// Number of 2 MiB-aligned chunks that fit fully inside the VMA.
    pub fn nr_chunks(&self) -> usize {
        self.huge.len()
    }

    /// Chunk index for a huge-aligned address inside the VMA.
    fn chunk_idx(&self, chunk_addr: u64) -> Option<usize> {
        let first = self.first_chunk_addr()?;
        if chunk_addr < first || chunk_addr + HUGE_PAGE_SIZE > self.range.end {
            return None;
        }
        debug_assert_eq!(chunk_addr % HUGE_PAGE_SIZE, 0);
        Some(((chunk_addr - first) / HUGE_PAGE_SIZE) as usize)
    }

    /// Whether the aligned chunk at `chunk_addr` is currently huge-mapped.
    pub fn is_huge(&self, chunk_addr: u64) -> bool {
        self.chunk_idx(huge_align_down(chunk_addr))
            .map(|i| self.huge[i])
            .unwrap_or(false)
    }

    /// Mark a chunk huge (true) or split (false). Returns previous state,
    /// or `None` if no aligned chunk exists there.
    pub fn set_huge(&mut self, chunk_addr: u64, huge: bool) -> Option<bool> {
        let i = self.chunk_idx(chunk_addr)?;
        Some(std::mem::replace(&mut self.huge[i], huge))
    }

    /// Iterate addresses of all aligned 2 MiB chunks inside `range ∩ vma`.
    pub fn chunks_in(&self, range: &AddrRange) -> impl Iterator<Item = u64> + '_ {
        let isect = self.range.intersect(range).unwrap_or(AddrRange::empty());
        let first = huge_align_up(isect.start);
        let last = huge_align_down(isect.end);
        (first..last.max(first))
            .step_by(HUGE_PAGE_SIZE as usize)
            .filter(move |a| self.chunk_idx(*a).is_some())
    }

    /// Bytes of this VMA currently mapped by huge chunks.
    pub fn huge_bytes(&self) -> u64 {
        self.huge.iter().filter(|h| **h).count() as u64 * HUGE_PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(n: u64) -> u64 {
        n << 20
    }

    #[test]
    fn vma_pte_indexing() {
        let mut vma = Vma::new(AddrRange::new(mb(4), mb(8)), ThpMode::Never);
        assert_eq!(vma.nr_pages(), (mb(4) / PAGE_SIZE) as usize);
        vma.pte_mut(mb(4)).accessed = true;
        assert!(vma.pte(mb(4)).accessed);
        assert!(!vma.pte(mb(4) + PAGE_SIZE).accessed);
        assert_eq!(vma.nr_resident(), 0);
    }

    #[test]
    fn chunk_accounting_aligned_vma() {
        let vma = Vma::new(AddrRange::new(mb(2), mb(8)), ThpMode::Always);
        assert_eq!(vma.nr_chunks(), 3);
        assert_eq!(vma.first_chunk_addr(), Some(mb(2)));
    }

    #[test]
    fn chunk_accounting_unaligned_vma() {
        // [1 MiB, 6 MiB): aligned chunks are [2,4) and [4,6) → 2 chunks.
        let vma = Vma::new(AddrRange::new(mb(1), mb(6)), ThpMode::Always);
        assert_eq!(vma.nr_chunks(), 2);
        assert_eq!(vma.first_chunk_addr(), Some(mb(2)));
    }

    #[test]
    fn tiny_vma_has_no_chunks() {
        let vma = Vma::new(AddrRange::new(mb(1), mb(1) + PAGE_SIZE), ThpMode::Always);
        assert_eq!(vma.nr_chunks(), 0);
        assert_eq!(vma.first_chunk_addr(), None);
        assert!(!vma.is_huge(mb(1)));
    }

    #[test]
    fn set_huge_roundtrip() {
        let mut vma = Vma::new(AddrRange::new(mb(2), mb(8)), ThpMode::Always);
        assert_eq!(vma.set_huge(mb(4), true), Some(false));
        assert!(vma.is_huge(mb(4)));
        assert!(vma.is_huge(mb(4) + 123)); // any addr in the chunk
        assert!(!vma.is_huge(mb(2)));
        assert_eq!(vma.huge_bytes(), HUGE_PAGE_SIZE);
        assert_eq!(vma.set_huge(mb(4), false), Some(true));
        assert_eq!(vma.huge_bytes(), 0);
    }

    #[test]
    fn set_huge_outside_chunks_is_none() {
        let mut vma = Vma::new(AddrRange::new(mb(1), mb(6)), ThpMode::Always);
        // mb(0) is outside; the last partial chunk start mb(6)-… not aligned in range
        assert_eq!(vma.set_huge(0, true), None);
        assert_eq!(vma.set_huge(mb(6), true), None);
    }

    #[test]
    fn chunks_in_intersects() {
        let vma = Vma::new(AddrRange::new(mb(2), mb(10)), ThpMode::Always);
        let chunks: Vec<u64> = vma.chunks_in(&AddrRange::new(mb(3), mb(9))).collect();
        assert_eq!(chunks, vec![mb(4), mb(6)]);
        let all: Vec<u64> = vma.chunks_in(&AddrRange::new(0, u64::MAX)).collect();
        assert_eq!(all.len(), vma.nr_chunks());
    }

    #[test]
    fn iter_ptes_addresses() {
        let vma = Vma::new(AddrRange::new(mb(4), mb(4) + 3 * PAGE_SIZE), ThpMode::Never);
        let addrs: Vec<u64> = vma.iter_ptes().map(|(a, _)| a).collect();
        assert_eq!(addrs, vec![mb(4), mb(4) + PAGE_SIZE, mb(4) + 2 * PAGE_SIZE]);
    }
}


daos_util::json_enum!(ThpMode { Never, Always, Madvise });
