//! Virtual memory areas and page-table entries.
//!
//! Each process owns a sorted set of [`Vma`]s. A VMA stores one [`Pte`]
//! per 4 KiB page plus per-2 MiB-chunk THP state. The PTE `accessed` bit is
//! the hardware feature the paper's monitoring primitives read and clear
//! (§3.1: "accessed bits in page table entries").
//!
//! ## Sparse page table
//!
//! PTEs live in a two-level table: 2 MiB chunks of 512 entries, aligned
//! to *absolute* 2 MiB boundaries (so a page-table chunk coincides with
//! the THP chunk covering the same addresses), materialised only when a
//! page in the chunk first leaves the `None` state. A fresh VMA costs
//! O(chunks) pointers instead of O(pages) PTEs, which is what lets
//! 10⁶–10⁸-page address spaces exist without a dense `Vec<Pte>` per VMA.
//!
//! Each chunk carries resident/swapped counters plus a per-8-page-block
//! resident count, and the VMA keeps running totals. Scans for resident
//! or swapped pages ([`Vma::collect_resident_in`],
//! [`Vma::collect_swapped_in`]) skip missing chunks, chunks whose counter
//! is zero, and zero blocks — so paging out an already-evicted region is
//! O(blocks touched), not O(pages in range). All state changes must go
//! through [`Vma::with_pte`] (or the [`Vma::touch_resident`] fast path),
//! which keeps the counters exact.

use crate::addr::{
    huge_align_down, huge_align_up, AddrRange, HUGE_PAGE_SIZE, PAGES_PER_HUGE, PAGE_SHIFT,
    PAGE_SIZE,
};
use crate::frame::FrameId;
use crate::swap::SwapSlot;

/// Pages per page-table chunk (one chunk = one aligned 2 MiB span).
pub const PT_CHUNK_PAGES: usize = PAGES_PER_HUGE as usize;
/// Pages per block inside a chunk (the fine-grained scan-skip unit).
const PT_BLOCK_PAGES: usize = 8;
/// Blocks per chunk.
const PT_BLOCKS: usize = PT_CHUNK_PAGES / PT_BLOCK_PAGES;

/// Backing state of one virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PteState {
    /// Never faulted in (or unmapped by reclaim of a clean page).
    None,
    /// Mapped to a physical frame.
    Resident(FrameId),
    /// Contents live in a swap slot.
    Swapped(SwapSlot),
}

/// One simulated page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Where the page's data lives.
    pub state: PteState,
    /// Hardware accessed ("young") bit — set on every CPU touch, cleared
    /// by the monitor's access checks and by LRU aging.
    pub accessed: bool,
    /// Generation stamp used by the lazy LRU lists to invalidate stale
    /// queue entries; bumped on every map/unmap/list move.
    pub lru_gen: u32,
}

impl Pte {
    const EMPTY: Pte = Pte { state: PteState::None, accessed: false, lru_gen: 0 };

    /// Whether the page occupies a physical frame.
    #[inline]
    pub fn is_resident(&self) -> bool {
        matches!(self.state, PteState::Resident(_))
    }
}

/// One materialised 2 MiB span of the page table.
#[derive(Debug, Clone, PartialEq)]
struct PteChunk {
    ptes: [Pte; PT_CHUNK_PAGES],
    /// Resident PTEs in this chunk.
    nr_resident: u32,
    /// Swapped PTEs in this chunk.
    nr_swapped: u32,
    /// Resident PTEs per 8-page block, for sub-chunk scan skipping.
    block_resident: [u8; PT_BLOCKS],
}

impl PteChunk {
    fn new() -> Box<Self> {
        Box::new(PteChunk {
            ptes: [Pte::EMPTY; PT_CHUNK_PAGES],
            nr_resident: 0,
            nr_swapped: 0,
            block_resident: [0; PT_BLOCKS],
        })
    }
}

/// Per-VMA transparent-huge-page policy, mirroring
/// `MADV_HUGEPAGE`/`MADV_NOHUGEPAGE` plus the system-wide "always" mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThpMode {
    /// Huge pages are never used for this VMA.
    Never,
    /// The kernel aggressively promotes any 2 MiB-aligned chunk with at
    /// least one resident page (the behaviour Kwon et al. criticise).
    Always,
    /// Promotion happens only when explicitly requested (DAMOS HUGEPAGE).
    Madvise,
}

/// A contiguous virtual mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct Vma {
    /// Byte range covered; always page-aligned.
    pub range: AddrRange,
    /// THP policy for this area.
    pub thp: ThpMode,
    /// Sparse page table: one optional chunk per aligned 2 MiB span
    /// overlapping the VMA. Slot 0 covers `huge_align_down(range.start)`.
    chunks: Vec<Option<Box<PteChunk>>>,
    /// Running count of resident PTEs across all chunks.
    total_resident: u64,
    /// Running count of swapped PTEs across all chunks.
    total_swapped: u64,
    /// Per-aligned-2 MiB-chunk huge flag. Chunk 0 starts at
    /// `huge_align_up(range.start)`.
    huge: Vec<bool>,
}

impl Vma {
    /// Create a VMA over `range` (must be page-aligned and non-empty).
    pub fn new(range: AddrRange, thp: ThpMode) -> Self {
        debug_assert!(range.start.is_multiple_of(PAGE_SIZE) && range.end.is_multiple_of(PAGE_SIZE));
        debug_assert!(!range.is_empty());
        let nr_slots =
            ((huge_align_up(range.end) - huge_align_down(range.start)) / HUGE_PAGE_SIZE) as usize;
        let nr_chunks = Self::nr_aligned_chunks(&range);
        Self {
            range,
            thp,
            chunks: (0..nr_slots).map(|_| None).collect(),
            total_resident: 0,
            total_swapped: 0,
            huge: vec![false; nr_chunks],
        }
    }

    fn nr_aligned_chunks(range: &AddrRange) -> usize {
        let start = huge_align_up(range.start);
        let end = huge_align_down(range.end);
        if start >= end {
            0
        } else {
            ((end - start) / HUGE_PAGE_SIZE) as usize
        }
    }

    /// Start of the (absolute-aligned) chunk grid.
    #[inline]
    fn grid_base(&self) -> u64 {
        huge_align_down(self.range.start)
    }

    /// Chunk-slot index of `addr`.
    #[inline]
    fn slot(&self, addr: u64) -> usize {
        debug_assert!(self.range.contains(addr));
        ((addr - self.grid_base()) / HUGE_PAGE_SIZE) as usize
    }

    /// Page index of `addr` within its chunk.
    #[inline]
    fn page_in_chunk(addr: u64) -> usize {
        ((addr & (HUGE_PAGE_SIZE - 1)) >> PAGE_SHIFT) as usize
    }

    /// The PTE covering `addr`, by value (missing chunks read as empty).
    #[inline]
    pub fn pte(&self, addr: u64) -> Pte {
        match &self.chunks[self.slot(addr)] {
            Some(c) => c.ptes[Self::page_in_chunk(addr)],
            None => Pte::EMPTY,
        }
    }

    /// Read-modify-write the PTE covering `addr` through `f`, keeping the
    /// chunk and VMA residency counters exact. The chunk is materialised
    /// only if `f` actually changes the entry, so probing an untouched
    /// page (e.g. a monitor access check) stays allocation-free.
    pub fn with_pte<R>(&mut self, addr: u64, f: impl FnOnce(&mut Pte) -> R) -> R {
        let slot = self.slot(addr);
        let pi = Self::page_in_chunk(addr);
        if let Some(c) = &mut self.chunks[slot] {
            let before = c.ptes[pi].state;
            let r = f(&mut c.ptes[pi]);
            let after = c.ptes[pi].state;
            self.account(slot, pi, before, after);
            r
        } else {
            let mut pte = Pte::EMPTY;
            let r = f(&mut pte);
            if pte != Pte::EMPTY {
                let c = self.chunks[slot].insert(PteChunk::new());
                c.ptes[pi] = pte;
                self.account(slot, pi, PteState::None, pte.state);
            }
            r
        }
    }

    /// Fast path for the workload touch loop: if `addr` is resident, set
    /// its accessed bit and return the backing frame; otherwise `None`
    /// (without materialising anything — a fault will).
    #[inline]
    pub fn touch_resident(&mut self, addr: u64) -> Option<FrameId> {
        let slot = self.slot(addr);
        let c = self.chunks[slot].as_deref_mut()?;
        let pte = &mut c.ptes[Self::page_in_chunk(addr)];
        match pte.state {
            PteState::Resident(f) => {
                pte.accessed = true;
                Some(f)
            }
            _ => None,
        }
    }

    /// Counter fixup for one PTE state transition.
    fn account(&mut self, slot: usize, pi: usize, before: PteState, after: PteState) {
        let res = |s: &PteState| matches!(s, PteState::Resident(_)) as i64;
        let swp = |s: &PteState| matches!(s, PteState::Swapped(_)) as i64;
        let dr = res(&after) - res(&before);
        let ds = swp(&after) - swp(&before);
        if dr == 0 && ds == 0 {
            return;
        }
        // lint: allow(panic, only reachable after with_pte materialised the chunk — a miss is substrate corruption)
        let c = self.chunks[slot].as_deref_mut().expect("accounted chunk must exist");
        c.nr_resident = (c.nr_resident as i64 + dr) as u32;
        c.nr_swapped = (c.nr_swapped as i64 + ds) as u32;
        let b = &mut c.block_resident[pi / PT_BLOCK_PAGES];
        *b = (*b as i64 + dr) as u8;
        self.total_resident = (self.total_resident as i64 + dr) as u64;
        self.total_swapped = (self.total_swapped as i64 + ds) as u64;
    }

    /// Number of 4 KiB pages in the VMA.
    #[inline]
    pub fn nr_pages(&self) -> usize {
        self.range.nr_pages() as usize
    }

    /// Iterate `(page_addr, pte)` over every *mapped* (resident or
    /// swapped) page, skipping unmaterialised chunks entirely.
    pub fn iter_mapped(&self) -> impl Iterator<Item = (u64, Pte)> + '_ {
        let base = self.grid_base();
        self.chunks
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_deref().map(|c| (i, c)))
            .filter(|(_, c)| c.nr_resident + c.nr_swapped > 0)
            .flat_map(move |(i, c)| {
                let chunk_base = base + i as u64 * HUGE_PAGE_SIZE;
                c.ptes
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.state != PteState::None)
                    .map(move |(pi, p)| (chunk_base + pi as u64 * PAGE_SIZE, *p))
            })
    }

    /// Number of resident pages (RSS contribution). O(1).
    #[inline]
    pub fn nr_resident(&self) -> usize {
        self.total_resident as usize
    }

    /// Number of swapped pages. O(1).
    #[inline]
    pub fn nr_swapped(&self) -> usize {
        self.total_swapped as usize
    }

    /// Chunk-slot span `[lo, hi)` covering pages `[page_lo, page_hi)`.
    fn slot_span(&self, page_lo: u64, page_hi: u64) -> (usize, usize) {
        let base = self.grid_base();
        let lo = ((page_lo - base) / HUGE_PAGE_SIZE) as usize;
        let hi = ((page_hi - base).div_ceil(HUGE_PAGE_SIZE) as usize).min(self.chunks.len());
        (lo, hi)
    }

    /// Push the addresses of all resident pages in `range ∩ vma` onto
    /// `out`, in address order. Chunks and 8-page blocks with no
    /// residents are skipped without reading a PTE.
    pub fn collect_resident_in(&self, range: &AddrRange, out: &mut Vec<u64>) {
        if self.total_resident == 0 {
            return;
        }
        let Some(isect) = self.range.intersect(range) else { return };
        let aligned = isect.page_aligned();
        let (s_lo, s_hi) = self.slot_span(aligned.start, aligned.end);
        let base = self.grid_base();
        for slot in s_lo..s_hi {
            let Some(c) = self.chunks[slot].as_deref() else { continue };
            if c.nr_resident == 0 {
                continue;
            }
            let chunk_base = base + slot as u64 * HUGE_PAGE_SIZE;
            let p_lo = (aligned.start.max(chunk_base) - chunk_base) as usize >> PAGE_SHIFT;
            let p_hi =
                ((aligned.end.min(chunk_base + HUGE_PAGE_SIZE) - chunk_base) as usize) >> PAGE_SHIFT;
            for b in (p_lo / PT_BLOCK_PAGES)..p_hi.div_ceil(PT_BLOCK_PAGES) {
                if c.block_resident[b] == 0 {
                    continue;
                }
                let s = (b * PT_BLOCK_PAGES).max(p_lo);
                let e = ((b + 1) * PT_BLOCK_PAGES).min(p_hi);
                for pi in s..e {
                    if c.ptes[pi].is_resident() {
                        out.push(chunk_base + (pi as u64) * PAGE_SIZE);
                    }
                }
            }
        }
    }

    /// Push the addresses of all swapped pages in `range ∩ vma` onto
    /// `out`, in address order, skipping swap-free chunks.
    pub fn collect_swapped_in(&self, range: &AddrRange, out: &mut Vec<u64>) {
        if self.total_swapped == 0 {
            return;
        }
        let Some(isect) = self.range.intersect(range) else { return };
        let aligned = isect.page_aligned();
        let (s_lo, s_hi) = self.slot_span(aligned.start, aligned.end);
        let base = self.grid_base();
        for slot in s_lo..s_hi {
            let Some(c) = self.chunks[slot].as_deref() else { continue };
            if c.nr_swapped == 0 {
                continue;
            }
            let chunk_base = base + slot as u64 * HUGE_PAGE_SIZE;
            let p_lo = (aligned.start.max(chunk_base) - chunk_base) as usize >> PAGE_SHIFT;
            let p_hi =
                ((aligned.end.min(chunk_base + HUGE_PAGE_SIZE) - chunk_base) as usize) >> PAGE_SHIFT;
            for pi in p_lo..p_hi {
                if matches!(c.ptes[pi].state, PteState::Swapped(_)) {
                    out.push(chunk_base + (pi as u64) * PAGE_SIZE);
                }
            }
        }
    }

    /// Resident pages in the aligned 2 MiB chunk at `chunk_addr`. O(1) —
    /// the page-table chunk grid coincides with the THP chunk grid.
    pub fn chunk_nr_resident(&self, chunk_addr: u64) -> u64 {
        debug_assert_eq!(chunk_addr % HUGE_PAGE_SIZE, 0);
        match self.chunks.get(self.slot(chunk_addr)).and_then(|c| c.as_deref()) {
            Some(c) => c.nr_resident as u64,
            None => 0,
        }
    }

    /// Swapped pages in the aligned 2 MiB chunk at `chunk_addr`. O(1).
    pub fn chunk_nr_swapped(&self, chunk_addr: u64) -> u64 {
        debug_assert_eq!(chunk_addr % HUGE_PAGE_SIZE, 0);
        match self.chunks.get(self.slot(chunk_addr)).and_then(|c| c.as_deref()) {
            Some(c) => c.nr_swapped as u64,
            None => 0,
        }
    }

    // ---- huge-page chunk bookkeeping -------------------------------

    /// Address of the first 2 MiB-aligned chunk, if any fits.
    pub fn first_chunk_addr(&self) -> Option<u64> {
        let start = huge_align_up(self.range.start);
        (start + HUGE_PAGE_SIZE <= self.range.end).then_some(start)
    }

    /// Number of 2 MiB-aligned chunks that fit fully inside the VMA.
    pub fn nr_chunks(&self) -> usize {
        self.huge.len()
    }

    /// Chunk index for a huge-aligned address inside the VMA.
    fn chunk_idx(&self, chunk_addr: u64) -> Option<usize> {
        let first = self.first_chunk_addr()?;
        if chunk_addr < first || chunk_addr + HUGE_PAGE_SIZE > self.range.end {
            return None;
        }
        debug_assert_eq!(chunk_addr % HUGE_PAGE_SIZE, 0);
        Some(((chunk_addr - first) / HUGE_PAGE_SIZE) as usize)
    }

    /// Whether the aligned chunk at `chunk_addr` is currently huge-mapped.
    pub fn is_huge(&self, chunk_addr: u64) -> bool {
        self.chunk_idx(huge_align_down(chunk_addr))
            .map(|i| self.huge[i])
            .unwrap_or(false)
    }

    /// Mark a chunk huge (true) or split (false). Returns previous state,
    /// or `None` if no aligned chunk exists there.
    pub fn set_huge(&mut self, chunk_addr: u64, huge: bool) -> Option<bool> {
        let i = self.chunk_idx(chunk_addr)?;
        Some(std::mem::replace(&mut self.huge[i], huge))
    }

    /// Iterate addresses of all aligned 2 MiB chunks inside `range ∩ vma`.
    pub fn chunks_in(&self, range: &AddrRange) -> impl Iterator<Item = u64> + '_ {
        let isect = self.range.intersect(range).unwrap_or(AddrRange::empty());
        let first = huge_align_up(isect.start);
        let last = huge_align_down(isect.end);
        (first..last.max(first))
            .step_by(HUGE_PAGE_SIZE as usize)
            .filter(move |a| self.chunk_idx(*a).is_some())
    }

    /// Bytes of this VMA currently mapped by huge chunks.
    pub fn huge_bytes(&self) -> u64 {
        self.huge.iter().filter(|h| **h).count() as u64 * HUGE_PAGE_SIZE
    }

    /// Debug invariant: the running counters match a full rescan.
    #[cfg(test)]
    fn check_counters(&self) {
        let mut resident = 0u64;
        let mut swapped = 0u64;
        for c in self.chunks.iter().flatten() {
            let r = c.ptes.iter().filter(|p| p.is_resident()).count() as u64;
            let s = c
                .ptes
                .iter()
                .filter(|p| matches!(p.state, PteState::Swapped(_)))
                .count() as u64;
            assert_eq!(c.nr_resident as u64, r);
            assert_eq!(c.nr_swapped as u64, s);
            for (b, cnt) in c.block_resident.iter().enumerate() {
                let in_block = c.ptes[b * PT_BLOCK_PAGES..(b + 1) * PT_BLOCK_PAGES]
                    .iter()
                    .filter(|p| p.is_resident())
                    .count();
                assert_eq!(*cnt as usize, in_block);
            }
            resident += r;
            swapped += s;
        }
        assert_eq!(self.total_resident, resident);
        assert_eq!(self.total_swapped, swapped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(n: u64) -> u64 {
        n << 20
    }

    #[test]
    fn vma_pte_indexing() {
        let mut vma = Vma::new(AddrRange::new(mb(4), mb(8)), ThpMode::Never);
        assert_eq!(vma.nr_pages(), (mb(4) / PAGE_SIZE) as usize);
        vma.with_pte(mb(4), |p| p.accessed = true);
        assert!(vma.pte(mb(4)).accessed);
        assert!(!vma.pte(mb(4) + PAGE_SIZE).accessed);
        assert_eq!(vma.nr_resident(), 0);
    }

    #[test]
    fn fresh_vma_materialises_no_chunks() {
        let vma = Vma::new(AddrRange::new(0, mb(512)), ThpMode::Never);
        assert!(vma.chunks.iter().all(|c| c.is_none()), "page table starts empty");
        // Reading any PTE stays allocation-free.
        assert_eq!(vma.pte(mb(100)).state, PteState::None);
    }

    #[test]
    fn probe_without_change_stays_sparse() {
        let mut vma = Vma::new(AddrRange::new(0, mb(8)), ThpMode::Never);
        // A monitor-style check of an untouched page must not materialise.
        let was = vma.with_pte(mb(3), |p| {
            let was = p.accessed;
            p.accessed = false;
            was
        });
        assert!(!was);
        assert!(vma.chunks.iter().all(|c| c.is_none()));
    }

    #[test]
    fn counters_track_state_transitions() {
        let mut vma = Vma::new(AddrRange::new(mb(1), mb(5)), ThpMode::Never);
        let a = mb(1);
        let b = mb(3) + 17 * PAGE_SIZE;
        vma.with_pte(a, |p| p.state = PteState::Resident(7));
        vma.with_pte(b, |p| p.state = PteState::Resident(8));
        assert_eq!(vma.nr_resident(), 2);
        assert_eq!(vma.nr_swapped(), 0);
        vma.with_pte(a, |p| p.state = PteState::Swapped(SwapSlot(0)));
        assert_eq!(vma.nr_resident(), 1);
        assert_eq!(vma.nr_swapped(), 1);
        vma.with_pte(a, |p| p.state = PteState::None);
        vma.with_pte(b, |p| p.state = PteState::None);
        assert_eq!(vma.nr_resident(), 0);
        assert_eq!(vma.nr_swapped(), 0);
        vma.check_counters();
    }

    #[test]
    fn touch_resident_fast_path() {
        let mut vma = Vma::new(AddrRange::new(0, mb(4)), ThpMode::Never);
        assert_eq!(vma.touch_resident(mb(1)), None, "hole: fault path");
        assert!(vma.chunks.iter().all(|c| c.is_none()), "miss must not materialise");
        vma.with_pte(mb(1), |p| p.state = PteState::Resident(3));
        assert_eq!(vma.touch_resident(mb(1)), Some(3));
        assert!(vma.pte(mb(1)).accessed, "touch sets the accessed bit");
        vma.check_counters();
    }

    #[test]
    fn collect_resident_skips_empty_spans() {
        // 8 MiB VMA; make exactly two pages resident, far apart.
        let mut vma = Vma::new(AddrRange::new(0, mb(8)), ThpMode::Never);
        for (i, addr) in [(1u32, mb(1)), (2u32, mb(7) + 3 * PAGE_SIZE)] {
            vma.with_pte(addr, |p| p.state = PteState::Resident(i));
        }
        let mut out = Vec::new();
        vma.collect_resident_in(&AddrRange::new(0, mb(8)), &mut out);
        assert_eq!(out, vec![mb(1), mb(7) + 3 * PAGE_SIZE]);
        out.clear();
        vma.collect_resident_in(&AddrRange::new(mb(2), mb(6)), &mut out);
        assert!(out.is_empty());
        vma.check_counters();
    }

    #[test]
    fn collect_swapped_finds_swap_entries() {
        let mut vma = Vma::new(AddrRange::new(mb(2), mb(6)), ThpMode::Never);
        vma.with_pte(mb(3), |p| p.state = PteState::Swapped(SwapSlot(9)));
        let mut out = Vec::new();
        vma.collect_swapped_in(&AddrRange::new(0, u64::MAX), &mut out);
        assert_eq!(out, vec![mb(3)]);
        out.clear();
        vma.collect_swapped_in(&AddrRange::new(mb(4), mb(6)), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_counters_align_with_thp_chunks() {
        // Unaligned VMA: [1 MiB, 6 MiB); THP chunks are [2,4) and [4,6).
        let mut vma = Vma::new(AddrRange::new(mb(1), mb(6)), ThpMode::Always);
        vma.with_pte(mb(2) + 5 * PAGE_SIZE, |p| p.state = PteState::Resident(1));
        vma.with_pte(mb(3), |p| p.state = PteState::Resident(2));
        vma.with_pte(mb(4), |p| p.state = PteState::Swapped(SwapSlot(1)));
        assert_eq!(vma.chunk_nr_resident(mb(2)), 2);
        assert_eq!(vma.chunk_nr_swapped(mb(2)), 0);
        assert_eq!(vma.chunk_nr_resident(mb(4)), 0);
        assert_eq!(vma.chunk_nr_swapped(mb(4)), 1);
    }

    #[test]
    fn chunk_accounting_aligned_vma() {
        let vma = Vma::new(AddrRange::new(mb(2), mb(8)), ThpMode::Always);
        assert_eq!(vma.nr_chunks(), 3);
        assert_eq!(vma.first_chunk_addr(), Some(mb(2)));
    }

    #[test]
    fn chunk_accounting_unaligned_vma() {
        // [1 MiB, 6 MiB): aligned chunks are [2,4) and [4,6) → 2 chunks.
        let vma = Vma::new(AddrRange::new(mb(1), mb(6)), ThpMode::Always);
        assert_eq!(vma.nr_chunks(), 2);
        assert_eq!(vma.first_chunk_addr(), Some(mb(2)));
    }

    #[test]
    fn tiny_vma_has_no_chunks() {
        let vma = Vma::new(AddrRange::new(mb(1), mb(1) + PAGE_SIZE), ThpMode::Always);
        assert_eq!(vma.nr_chunks(), 0);
        assert_eq!(vma.first_chunk_addr(), None);
        assert!(!vma.is_huge(mb(1)));
    }

    #[test]
    fn set_huge_roundtrip() {
        let mut vma = Vma::new(AddrRange::new(mb(2), mb(8)), ThpMode::Always);
        assert_eq!(vma.set_huge(mb(4), true), Some(false));
        assert!(vma.is_huge(mb(4)));
        assert!(vma.is_huge(mb(4) + 123)); // any addr in the chunk
        assert!(!vma.is_huge(mb(2)));
        assert_eq!(vma.huge_bytes(), HUGE_PAGE_SIZE);
        assert_eq!(vma.set_huge(mb(4), false), Some(true));
        assert_eq!(vma.huge_bytes(), 0);
    }

    #[test]
    fn set_huge_outside_chunks_is_none() {
        let mut vma = Vma::new(AddrRange::new(mb(1), mb(6)), ThpMode::Always);
        // mb(0) is outside; the last partial chunk start mb(6)-… not aligned in range
        assert_eq!(vma.set_huge(0, true), None);
        assert_eq!(vma.set_huge(mb(6), true), None);
    }

    #[test]
    fn chunks_in_intersects() {
        let vma = Vma::new(AddrRange::new(mb(2), mb(10)), ThpMode::Always);
        let chunks: Vec<u64> = vma.chunks_in(&AddrRange::new(mb(3), mb(9))).collect();
        assert_eq!(chunks, vec![mb(4), mb(6)]);
        let all: Vec<u64> = vma.chunks_in(&AddrRange::new(0, u64::MAX)).collect();
        assert_eq!(all.len(), vma.nr_chunks());
    }

    #[test]
    fn iter_mapped_skips_holes() {
        let mut vma = Vma::new(AddrRange::new(mb(4), mb(4) + 3 * PAGE_SIZE), ThpMode::Never);
        assert_eq!(vma.iter_mapped().count(), 0, "fresh VMA maps nothing");
        vma.with_pte(mb(4) + PAGE_SIZE, |p| p.state = PteState::Resident(1));
        vma.with_pte(mb(4) + 2 * PAGE_SIZE, |p| p.state = PteState::Swapped(SwapSlot(2)));
        let entries: Vec<(u64, PteState)> =
            vma.iter_mapped().map(|(a, p)| (a, p.state)).collect();
        assert_eq!(
            entries,
            vec![
                (mb(4) + PAGE_SIZE, PteState::Resident(1)),
                (mb(4) + 2 * PAGE_SIZE, PteState::Swapped(SwapSlot(2))),
            ]
        );
    }
}


daos_util::json_enum!(ThpMode { Never, Always, Madvise });
