//! Swap devices.
//!
//! The paper configures its guests with a 4 GiB zram swap device (the
//! compressed in-memory block device its baseline and all schemes use) and,
//! for the production experiment (Fig. 9), compares zram against file-based
//! swap and no swap at all. We model the three backends:
//!
//! * **Zram** — capacity is consumed at `page_size / compression_ratio`
//!   per stored page; store/load latencies are CPU-bound (compression).
//! * **File** — plain swap file on NVMe; higher latency, large capacity.
//! * **None** — pageout requests fail, pages stay resident (Fig. 9's
//!   "No Swap" bar).


use crate::addr::PAGE_SIZE;
use crate::clock::Ns;
use crate::error::{MmError, MmResult};
use crate::machine::MachineProfile;

/// An opaque ticket for a swapped-out page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwapSlot(pub u64);

/// Which swap backend to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwapConfig {
    /// No swap device: reclaim to swap is impossible.
    None,
    /// Compressed in-memory block device (zram).
    Zram {
        /// Device size in bytes (of *compressed* data it may hold).
        capacity_bytes: u64,
        /// Average compression ratio achieved on the workload's pages.
        compression_ratio: f64,
    },
    /// Swap file on the local NVMe drive.
    File {
        /// Maximum bytes of swapped pages.
        capacity_bytes: u64,
    },
}

impl SwapConfig {
    /// The paper's default: a 4 GiB zram device, scaled by the same factor
    /// as DRAM (256×) to 16 MiB... which would be too small relative to our
    /// scaled workloads, so we keep the *ratio to workload footprints*
    /// instead: 512 MiB with a typical 3× compression ratio.
    pub fn paper_zram() -> Self {
        SwapConfig::Zram {
            capacity_bytes: 512 << 20,
            compression_ratio: 3.0,
        }
    }

    /// A large swap file, as used by Fig. 9's "File Swap" configuration.
    pub fn paper_file() -> Self {
        SwapConfig::File { capacity_bytes: 4 << 30 }
    }
}

/// A swap device instance with usage accounting.
#[derive(Debug, Clone)]
pub struct SwapDevice {
    config: SwapConfig,
    next_slot: u64,
    /// Bytes of device capacity currently consumed.
    used_bytes: f64,
    /// Lifetime counters.
    stores: u64,
    loads: u64,
}

impl SwapDevice {
    /// Create a device from its configuration.
    pub fn new(config: SwapConfig) -> Self {
        Self { config, next_slot: 0, used_bytes: 0.0, stores: 0, loads: 0 }
    }

    /// The device configuration.
    pub fn config(&self) -> SwapConfig {
        self.config
    }

    /// Bytes of backing capacity consumed right now.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes as u64
    }

    /// Lifetime number of stored pages.
    pub fn nr_stores(&self) -> u64 {
        self.stores
    }

    /// Lifetime number of loaded pages.
    pub fn nr_loads(&self) -> u64 {
        self.loads
    }

    /// How many bytes one stored page consumes on this device.
    fn cost_per_page(&self) -> f64 {
        match self.config {
            SwapConfig::None => 0.0,
            SwapConfig::Zram { compression_ratio, .. } => PAGE_SIZE as f64 / compression_ratio,
            SwapConfig::File { .. } => PAGE_SIZE as f64,
        }
    }

    /// Whether one more page fits.
    pub fn has_room(&self) -> bool {
        match self.config {
            SwapConfig::None => false,
            SwapConfig::Zram { capacity_bytes, .. } | SwapConfig::File { capacity_bytes } => {
                self.used_bytes + self.cost_per_page() <= capacity_bytes as f64
            }
        }
    }

    /// Store one page; returns the slot and the device-side latency.
    pub fn store(&mut self, machine: &MachineProfile) -> MmResult<(SwapSlot, Ns)> {
        if !self.has_room() {
            return Err(MmError::SwapFull);
        }
        self.used_bytes += self.cost_per_page();
        self.stores += 1;
        let slot = SwapSlot(self.next_slot);
        self.next_slot += 1;
        let lat = match self.config {
            // lint: allow(panic, has_room() returned false for SwapConfig::None above)
            SwapConfig::None => unreachable!("has_room() is false for SwapConfig::None"),
            SwapConfig::Zram { .. } => machine.zram_store_ns,
            SwapConfig::File { .. } => machine.file_swap_write_ns,
        };
        Ok((slot, lat))
    }

    /// Load (and free) one previously stored page; returns the latency.
    pub fn load(&mut self, _slot: SwapSlot, machine: &MachineProfile) -> Ns {
        self.used_bytes = (self.used_bytes - self.cost_per_page()).max(0.0);
        self.loads += 1;
        match self.config {
            SwapConfig::None => 0,
            SwapConfig::Zram { .. } => machine.zram_load_ns,
            SwapConfig::File { .. } => machine.file_swap_read_ns,
        }
    }

    /// Drop a stored page without reading it back (e.g. the owning mapping
    /// went away).
    pub fn discard(&mut self, _slot: SwapSlot) {
        self.used_bytes = (self.used_bytes - self.cost_per_page()).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineProfile {
        MachineProfile::test_tiny()
    }

    #[test]
    fn none_device_rejects_stores() {
        let mut dev = SwapDevice::new(SwapConfig::None);
        assert!(!dev.has_room());
        assert_eq!(dev.store(&machine()), Err(MmError::SwapFull));
    }

    #[test]
    fn zram_compression_stretches_capacity() {
        // 8 KiB device at 2x compression holds 4 pages, not 2.
        let mut dev = SwapDevice::new(SwapConfig::Zram {
            capacity_bytes: 2 * PAGE_SIZE,
            compression_ratio: 2.0,
        });
        let m = machine();
        for _ in 0..4 {
            dev.store(&m).expect("fits thanks to compression");
        }
        assert_eq!(dev.store(&m), Err(MmError::SwapFull));
        assert_eq!(dev.nr_stores(), 4);
    }

    #[test]
    fn file_swap_is_uncompressed() {
        let mut dev = SwapDevice::new(SwapConfig::File { capacity_bytes: 2 * PAGE_SIZE });
        let m = machine();
        dev.store(&m).unwrap();
        dev.store(&m).unwrap();
        assert_eq!(dev.store(&m), Err(MmError::SwapFull));
    }

    #[test]
    fn load_frees_capacity() {
        let mut dev = SwapDevice::new(SwapConfig::File { capacity_bytes: PAGE_SIZE });
        let m = machine();
        let (slot, _) = dev.store(&m).unwrap();
        assert!(!dev.has_room());
        let lat = dev.load(slot, &m);
        assert_eq!(lat, m.file_swap_read_ns);
        assert!(dev.has_room());
        assert_eq!(dev.used_bytes(), 0);
    }

    #[test]
    fn discard_frees_without_load_cost() {
        let mut dev = SwapDevice::new(SwapConfig::paper_zram());
        let m = machine();
        let (slot, _) = dev.store(&m).unwrap();
        let before_loads = dev.nr_loads();
        dev.discard(slot);
        assert_eq!(dev.nr_loads(), before_loads);
        assert_eq!(dev.used_bytes(), 0);
    }

    #[test]
    fn zram_latency_cheaper_than_file() {
        let m = MachineProfile::i3_metal();
        let mut zram = SwapDevice::new(SwapConfig::paper_zram());
        let mut file = SwapDevice::new(SwapConfig::paper_file());
        let (zs, zlat) = zram.store(&m).unwrap();
        let (fs, flat) = file.store(&m).unwrap();
        // zram store costs CPU (compression) but its *load* path is faster
        // than NVMe reads on every paper machine.
        assert!(zram.load(zs, &m) < file.load(fs, &m));
        let _ = (zlat, flat);
    }
}


use daos_util::json::{self, FromJson, Json, JsonError, ToJson};

impl ToJson for SwapConfig {
    fn to_json(&self) -> Json {
        match self {
            SwapConfig::None => Json::Str("None".into()),
            SwapConfig::Zram { capacity_bytes, compression_ratio } => json::tagged(
                "Zram",
                Json::Object(vec![
                    ("capacity_bytes".into(), capacity_bytes.to_json()),
                    ("compression_ratio".into(), compression_ratio.to_json()),
                ]),
            ),
            SwapConfig::File { capacity_bytes } => json::tagged(
                "File",
                Json::Object(vec![("capacity_bytes".into(), capacity_bytes.to_json())]),
            ),
        }
    }
}

impl FromJson for SwapConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Json::Str(s) = v {
            return match s.as_str() {
                "None" => Ok(SwapConfig::None),
                other => Err(JsonError::msg(format!("unknown SwapConfig '{other}'"))),
            };
        }
        let (tag, payload) = json::untag(v)?;
        match tag {
            "Zram" => Ok(SwapConfig::Zram {
                capacity_bytes: payload.field("capacity_bytes")?,
                compression_ratio: payload.field("compression_ratio")?,
            }),
            "File" => Ok(SwapConfig::File { capacity_bytes: payload.field("capacity_bytes")? }),
            other => Err(JsonError::msg(format!("unknown SwapConfig '{other}'"))),
        }
    }
}
