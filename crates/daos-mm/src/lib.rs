//! # daos-mm — simulated kernel memory-management substrate
//!
//! This crate stands in for the Linux mm subsystem the paper's kernel
//! components hook into: page tables with hardware accessed bits, VMAs,
//! a physical frame allocator with reverse mapping, two-list LRU reclaim,
//! transparent huge pages (including the memory-bloat behaviour the
//! paper's `ethp` scheme targets), zram/file swap devices, and a
//! machine-profile-driven latency cost model — all under a deterministic
//! virtual clock.
//!
//! The interface the monitoring/scheme layers consume is deliberately the
//! narrow one DAMON uses in the kernel:
//!
//! * [`MemorySystem::check_accessed_clear`] — read+clear a PTE accessed bit
//!   (virtual primitive) / [`MemorySystem::check_paddr_accessed_clear`]
//!   (physical primitive via rmap);
//! * [`MemorySystem::vma_ranges`] / [`MemorySystem::phys_space`] — target
//!   discovery;
//! * [`MemorySystem::pageout`], [`MemorySystem::promote_huge`],
//!   [`MemorySystem::demote_huge`], [`MemorySystem::mark_cold`],
//!   [`MemorySystem::willneed`] — the scheme actions of Table 1.
//!
//! Everything above this crate is the *real* DAOS algorithm, not a model.

pub mod access;
pub mod addr;
pub mod clock;
pub mod error;
pub mod frame;
pub mod lru;
pub mod machine;
pub mod process;
pub mod stats;
pub mod swap;
pub mod system;
pub mod tlb;
pub mod vma;

pub use access::{AccessBatch, AccessOutcome, TouchPattern};
pub use addr::{AddrRange, HUGE_PAGE_SIZE, PAGE_SIZE};
pub use clock::{ms, sec, Clock, Ns, MINUTE, MSEC, SEC, USEC};
pub use error::{MmError, MmResult};
pub use machine::MachineProfile;
pub use process::Pid;
pub use stats::{KernelStats, ProcStats};
pub use swap::{SwapConfig, SwapDevice};
pub use system::MemorySystem;
pub use vma::ThpMode;
