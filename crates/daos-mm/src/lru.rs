//! Two-list (active/inactive) page LRU, the kernel mechanism the paper
//! cites as Linux's recency machinery (§2.2: "the Linux kernel transforms
//! the periodic access check results to recency information using its two
//! LRU lists mechanism").
//!
//! Pages enter the inactive list when first mapped, are promoted to the
//! active list when referenced again, and are reclaimed from the inactive
//! tail. DAMOS's `COLD` action deactivates pages (moves them to the
//! inactive tail) so pressure reclaim takes them first.
//!
//! The implementation uses generation-stamped entries with lazy deletion:
//! each queued entry carries the page's `lru_gen` at enqueue time; entries
//! whose generation no longer matches the PTE are skipped on pop. This
//! keeps every operation O(1) amortised without intrusive links.

use std::collections::VecDeque;

use crate::process::Pid;

/// Which list a queued entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LruList {
    /// Recently-referenced pages; scanned only under sustained pressure.
    Active,
    /// Reclaim candidates; evicted from the tail.
    Inactive,
}

/// A queued page reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LruEntry {
    /// Owning process.
    pub pid: Pid,
    /// Page-aligned virtual address.
    pub addr: u64,
    /// Generation stamp; must match the PTE's `lru_gen` to be live.
    pub gen: u32,
}

/// The two-list LRU.
#[derive(Debug, Default, Clone)]
pub struct Lru {
    active: VecDeque<LruEntry>,
    inactive: VecDeque<LruEntry>,
}

impl Lru {
    /// Empty LRU.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a newly mapped (or re-referenced) page on the given list's
    /// head. The caller must have bumped the PTE's `lru_gen` to `gen`.
    pub fn insert(&mut self, list: LruList, pid: Pid, addr: u64, gen: u32) {
        let e = LruEntry { pid, addr, gen };
        match list {
            LruList::Active => self.active.push_front(e),
            LruList::Inactive => self.inactive.push_front(e),
        }
    }

    /// Queue a page at the inactive *tail* — the very next reclaim victim.
    /// Used by DAMOS `COLD`.
    pub fn deactivate_to_tail(&mut self, pid: Pid, addr: u64, gen: u32) {
        self.inactive.push_back(LruEntry { pid, addr, gen });
    }

    /// Pop the best eviction candidate from the inactive tail. The caller
    /// validates the generation against the PTE and calls again on a stale
    /// hit; `validate` does both in one step.
    pub fn pop_inactive(&mut self) -> Option<LruEntry> {
        self.inactive.pop_back()
    }

    /// Pop the oldest active entry (for active-list shrinking).
    pub fn pop_active(&mut self) -> Option<LruEntry> {
        self.active.pop_back()
    }

    /// Queue lengths `(active, inactive)` including stale entries.
    pub fn queued_len(&self) -> (usize, usize) {
        (self.active.len(), self.inactive.len())
    }

    /// Whether both lists are (apparently) empty.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty() && self.inactive.is_empty()
    }

    /// Drop all queued entries (e.g. after process teardown in tests).
    pub fn clear(&mut self) {
        self.active.clear();
        self.inactive.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_inactive() {
        let mut lru = Lru::new();
        lru.insert(LruList::Inactive, 1, 0x1000, 1);
        lru.insert(LruList::Inactive, 1, 0x2000, 1);
        // Tail pop returns the *oldest* insert.
        assert_eq!(lru.pop_inactive().unwrap().addr, 0x1000);
        assert_eq!(lru.pop_inactive().unwrap().addr, 0x2000);
        assert!(lru.pop_inactive().is_none());
    }

    #[test]
    fn deactivate_to_tail_is_next_victim() {
        let mut lru = Lru::new();
        lru.insert(LruList::Inactive, 1, 0x1000, 1);
        lru.deactivate_to_tail(1, 0x9000, 2);
        assert_eq!(lru.pop_inactive().unwrap().addr, 0x9000);
    }

    #[test]
    fn lists_are_independent() {
        let mut lru = Lru::new();
        lru.insert(LruList::Active, 1, 0xa000, 1);
        lru.insert(LruList::Inactive, 1, 0xb000, 1);
        assert_eq!(lru.queued_len(), (1, 1));
        assert_eq!(lru.pop_active().unwrap().addr, 0xa000);
        assert_eq!(lru.pop_inactive().unwrap().addr, 0xb000);
        assert!(lru.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut lru = Lru::new();
        lru.insert(LruList::Active, 1, 0, 0);
        lru.clear();
        assert!(lru.is_empty());
    }
}
