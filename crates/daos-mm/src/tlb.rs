//! TLB-reach cost model.
//!
//! The benefit of transparent huge pages in the paper's workloads (e.g.
//! splash2x/ocean_ncp's 27.5 % gain) comes from TLB reach: 2 MiB mappings
//! cover 512× more address space per TLB entry, so large, intensely
//! accessed working sets take far fewer page-table walks. This module
//! turns "how many pages were touched, how many via huge mappings" into a
//! per-access nanosecond cost.

use crate::machine::MachineProfile;

/// Estimated TLB miss rate for a working set of `ws_bytes` covered by a
/// TLB reach of `coverage_bytes`.
///
/// Below full coverage the miss rate is ~0; beyond it, misses grow with
/// the uncovered fraction, capped below 1.0 because real access streams
/// have locality.
#[inline]
pub fn miss_rate(ws_bytes: u64, coverage_bytes: u64) -> f64 {
    if ws_bytes <= coverage_bytes || ws_bytes == 0 {
        0.0
    } else {
        let uncovered = (ws_bytes - coverage_bytes) as f64 / ws_bytes as f64;
        uncovered.min(0.95)
    }
}

/// Per-access cost (ns) for the 4 KiB-mapped and 2 MiB-mapped portions of
/// an access batch.
///
/// `ws_4k`/`ws_2m` are the bytes of the batch's touched working set mapped
/// by base pages and by huge chunks respectively.
pub fn access_costs(machine: &MachineProfile, ws_4k: u64, ws_2m: u64) -> (f64, f64) {
    let m4 = miss_rate(ws_4k, machine.tlb_coverage_4k());
    let m2 = miss_rate(ws_2m, machine.tlb_coverage_2m());
    (
        machine.dram_latency_ns + m4 * machine.tlb_miss_penalty_ns,
        machine.dram_latency_ns + m2 * machine.tlb_miss_penalty_ns,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    #[test]
    fn small_ws_never_misses() {
        assert_eq!(miss_rate(0, 1000), 0.0);
        assert_eq!(miss_rate(1000, 1000), 0.0);
        assert_eq!(miss_rate(999, 1000), 0.0);
    }

    #[test]
    fn miss_rate_grows_and_caps() {
        let cov = 100;
        assert!(miss_rate(200, cov) > miss_rate(150, cov));
        assert!(miss_rate(u64::MAX / 2, cov) <= 0.95);
    }

    #[test]
    fn huge_pages_cut_cost_for_large_ws() {
        let m = MachineProfile::i3_metal();
        // A working set 8x the 4 KiB TLB reach.
        let ws = 8 * m.tlb_coverage_4k();
        let (c4, c2_same_ws) = access_costs(&m, ws, ws);
        // The same bytes via 2 MiB mappings are fully covered by the 2 MiB
        // TLB (its reach is 2 GiB on these profiles).
        assert!(c4 > m.dram_latency_ns);
        assert_eq!(c2_same_ws, m.dram_latency_ns);
        assert!(c4 > c2_same_ws);
    }

    #[test]
    fn tiny_ws_costs_dram_latency_only() {
        let m = MachineProfile::i3_metal();
        let (c4, c2) = access_costs(&m, 64 * PAGE_SIZE, 0);
        assert_eq!(c4, m.dram_latency_ns);
        assert_eq!(c2, m.dram_latency_ns);
    }
}
