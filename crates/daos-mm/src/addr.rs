//! Address types and page-granularity arithmetic.
//!
//! The whole substrate works on byte addresses (`u64`) grouped into 4 KiB
//! pages, with 2 MiB huge-page alignment where THP is involved. Address
//! ranges are half-open `[start, end)`, matching the kernel's convention.


/// Size of a base page in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Size of a transparent huge page in bytes (2 MiB).
pub const HUGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;
/// Number of base pages per huge page (512).
pub const PAGES_PER_HUGE: u64 = HUGE_PAGE_SIZE / PAGE_SIZE;

/// Round `addr` down to a page boundary.
#[inline]
pub const fn page_align_down(addr: u64) -> u64 {
    addr & !(PAGE_SIZE - 1)
}

/// Round `addr` up to a page boundary.
#[inline]
pub const fn page_align_up(addr: u64) -> u64 {
    (addr + PAGE_SIZE - 1) & !(PAGE_SIZE - 1)
}

/// Round `addr` down to a huge-page boundary.
#[inline]
pub const fn huge_align_down(addr: u64) -> u64 {
    addr & !(HUGE_PAGE_SIZE - 1)
}

/// Round `addr` up to a huge-page boundary.
#[inline]
pub const fn huge_align_up(addr: u64) -> u64 {
    (addr + HUGE_PAGE_SIZE - 1) & !(HUGE_PAGE_SIZE - 1)
}

/// A half-open byte-address range `[start, end)`.
///
/// This is the unit the monitor, the schemes engine and the substrate all
/// exchange; it corresponds to `struct damon_addr_range` in the upstream
/// kernel implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    /// Inclusive start address.
    pub start: u64,
    /// Exclusive end address.
    pub end: u64,
}

impl AddrRange {
    /// Create a new range. `start > end` is normalised to an empty range.
    #[inline]
    pub const fn new(start: u64, end: u64) -> Self {
        if start > end {
            Self { start, end: start }
        } else {
            Self { start, end }
        }
    }

    /// The empty range at address 0.
    #[inline]
    pub const fn empty() -> Self {
        Self { start: 0, end: 0 }
    }

    /// Length in bytes.
    #[inline]
    pub const fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range covers no bytes.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Number of whole 4 KiB pages covered (the range is assumed
    /// page-aligned; partial pages round up so no byte is lost).
    #[inline]
    pub const fn nr_pages(&self) -> u64 {
        self.len().div_ceil(PAGE_SIZE)
    }

    /// Whether `addr` lies inside the range.
    #[inline]
    pub const fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Whether `other` is fully contained in `self`.
    #[inline]
    pub const fn contains_range(&self, other: &AddrRange) -> bool {
        other.is_empty() || (other.start >= self.start && other.end <= self.end)
    }

    /// Intersection of two ranges; `None` when they do not overlap.
    #[inline]
    pub fn intersect(&self, other: &AddrRange) -> Option<AddrRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(AddrRange { start, end })
        } else {
            None
        }
    }

    /// Whether the two ranges share at least one byte.
    #[inline]
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Split the range at `mid`, which must be inside the range, yielding
    /// `[start, mid)` and `[mid, end)`.
    #[inline]
    pub fn split_at(&self, mid: u64) -> (AddrRange, AddrRange) {
        debug_assert!(mid > self.start && mid < self.end);
        (
            AddrRange { start: self.start, end: mid },
            AddrRange { start: mid, end: self.end },
        )
    }

    /// Iterator over the page-aligned start address of every page in the
    /// range.
    #[inline]
    pub fn pages(&self) -> impl Iterator<Item = u64> {
        let first = page_align_down(self.start);
        let last = page_align_up(self.end);
        (first..last).step_by(PAGE_SIZE as usize)
    }

    /// The range expanded outward to full page boundaries.
    #[inline]
    pub fn page_aligned(&self) -> AddrRange {
        AddrRange {
            start: page_align_down(self.start),
            end: page_align_up(self.end),
        }
    }

    /// The largest huge-page-aligned sub-range, shrunk inward. Empty when
    /// no aligned 2 MiB chunk fits.
    #[inline]
    pub fn huge_aligned_inner(&self) -> AddrRange {
        let start = huge_align_up(self.start);
        let end = huge_align_down(self.end);
        if start >= end {
            AddrRange::empty()
        } else {
            AddrRange { start, end }
        }
    }
}

impl core::fmt::Display for AddrRange {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_helpers() {
        assert_eq!(page_align_down(4097), 4096);
        assert_eq!(page_align_down(4096), 4096);
        assert_eq!(page_align_up(4097), 8192);
        assert_eq!(page_align_up(4096), 4096);
        assert_eq!(huge_align_down(HUGE_PAGE_SIZE + 5), HUGE_PAGE_SIZE);
        assert_eq!(huge_align_up(1), HUGE_PAGE_SIZE);
        assert_eq!(huge_align_up(0), 0);
    }

    #[test]
    fn range_basics() {
        let r = AddrRange::new(0x1000, 0x5000);
        assert_eq!(r.len(), 0x4000);
        assert_eq!(r.nr_pages(), 4);
        assert!(r.contains(0x1000));
        assert!(!r.contains(0x5000));
        assert!(!r.is_empty());
        assert!(AddrRange::empty().is_empty());
    }

    #[test]
    fn degenerate_range_is_normalised() {
        let r = AddrRange::new(10, 5);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn intersect_and_overlap() {
        let a = AddrRange::new(0, 100);
        let b = AddrRange::new(50, 150);
        let c = AddrRange::new(100, 200);
        assert_eq!(a.intersect(&b), Some(AddrRange::new(50, 100)));
        assert_eq!(a.intersect(&c), None);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn split_preserves_bytes() {
        let r = AddrRange::new(0x1000, 0x9000);
        let (lo, hi) = r.split_at(0x4000);
        assert_eq!(lo.len() + hi.len(), r.len());
        assert_eq!(lo.end, hi.start);
    }

    #[test]
    fn pages_iterator_counts() {
        let r = AddrRange::new(0x1000, 0x4000);
        assert_eq!(r.pages().count(), 3);
        let unaligned = AddrRange::new(0x1001, 0x1002);
        assert_eq!(unaligned.pages().count(), 1);
    }

    #[test]
    fn huge_aligned_inner_shrinks() {
        let r = AddrRange::new(1, 3 * HUGE_PAGE_SIZE - 1);
        let inner = r.huge_aligned_inner();
        assert_eq!(inner.start, HUGE_PAGE_SIZE);
        assert_eq!(inner.end, 2 * HUGE_PAGE_SIZE);
        let small = AddrRange::new(1, HUGE_PAGE_SIZE);
        assert!(small.huge_aligned_inner().is_empty());
    }

    #[test]
    fn contains_range_edge_cases() {
        let r = AddrRange::new(100, 200);
        assert!(r.contains_range(&AddrRange::new(100, 200)));
        assert!(r.contains_range(&AddrRange::new(150, 150))); // empty
        assert!(!r.contains_range(&AddrRange::new(99, 150)));
        assert!(!r.contains_range(&AddrRange::new(150, 201)));
    }
}


daos_util::json_struct!(AddrRange { start, end });
