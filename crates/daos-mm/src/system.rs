//! The simulated machine: processes + frames + swap + LRU + cost model.
//!
//! [`MemorySystem`] is the single entry point the rest of the stack talks
//! to. Workloads drive it with [`AccessBatch`]es; the monitor reads and
//! clears PTE accessed bits through it; the schemes engine applies memory
//! operations (pageout, THP promotion/demotion, ...) through it.

use daos_util::rng::SmallRng;

use crate::access::{AccessBatch, AccessOutcome, TouchPattern};
use crate::addr::{AddrRange, HUGE_PAGE_SIZE, PAGE_SIZE};
use crate::clock::{Clock, Ns};
use crate::error::{MmError, MmResult};
use crate::frame::FrameAllocator;
use crate::lru::{Lru, LruList};
use crate::machine::MachineProfile;
use crate::process::{Pid, Process};
use crate::stats::KernelStats;
use crate::swap::{SwapConfig, SwapDevice};
use crate::tlb::access_costs;
use crate::vma::{PteState, ThpMode};

/// How many pages one pressure-reclaim pass tries to free.
const RECLAIM_BATCH: u64 = 32;

/// The whole simulated machine.
#[derive(Debug)]
pub struct MemorySystem {
    machine: MachineProfile,
    clock: Clock,
    frames: FrameAllocator,
    swap: SwapDevice,
    procs: Vec<Process>,
    lru: Lru,
    rng: SmallRng,
    /// Kernel-side accounting (monitor, schemes, reclaim CPU time).
    pub kstats: KernelStats,
    fault_scratch: Vec<u64>,
}

impl MemorySystem {
    /// Build a machine with the given hardware profile and swap device.
    /// `seed` drives every stochastic decision, making runs reproducible.
    pub fn new(machine: MachineProfile, swap: SwapConfig, seed: u64) -> Self {
        let frames = FrameAllocator::new(machine.dram_bytes);
        Self {
            machine,
            clock: Clock::new(),
            frames,
            swap: SwapDevice::new(swap),
            procs: Vec::new(),
            lru: Lru::new(),
            rng: SmallRng::seed_from_u64(seed),
            kstats: KernelStats::default(),
            fault_scratch: Vec::new(),
        }
    }

    // ---- introspection ---------------------------------------------

    /// The hardware profile.
    pub fn machine(&self) -> &MachineProfile {
        &self.machine
    }

    /// Current virtual time.
    pub fn now(&self) -> Ns {
        self.clock.now()
    }

    /// The swap device (read-only).
    pub fn swap(&self) -> &SwapDevice {
        &self.swap
    }

    /// Resident-set size of a process in bytes.
    pub fn rss_bytes(&self, pid: Pid) -> u64 {
        self.procs.get(pid as usize).map(|p| p.rss_bytes()).unwrap_or(0)
    }

    /// Lifetime statistics of a process.
    pub fn proc_stats(&self, pid: Pid) -> Option<&crate::stats::ProcStats> {
        self.procs.get(pid as usize).map(|p| &p.stats)
    }

    /// Mutable statistics of a process (the runner charges compute time).
    pub fn proc_stats_mut(&mut self, pid: Pid) -> Option<&mut crate::stats::ProcStats> {
        self.procs.get_mut(pid as usize).map(|p| &mut p.stats)
    }

    /// Total bytes of physical memory in use.
    pub fn used_dram_bytes(&self) -> u64 {
        self.frames.used_bytes()
    }

    /// Sorted VMA ranges of a process — the virtual-address monitoring
    /// primitive's view of the target.
    pub fn vma_ranges(&self, pid: Pid) -> Vec<AddrRange> {
        self.procs
            .get(pid as usize)
            .map(|p| p.vma_ranges())
            .unwrap_or_default()
    }

    /// The physical address space `[0, dram_bytes)` — the physical
    /// monitoring primitive's target.
    pub fn phys_space(&self) -> AddrRange {
        AddrRange::new(0, self.machine.dram_bytes)
    }

    /// rmap lookup: which `(pid, vaddr)` owns the frame backing physical
    /// address `paddr`, if any.
    pub fn phys_owner(&self, paddr: u64) -> Option<(Pid, u64)> {
        let frame = (paddr / PAGE_SIZE) as u32;
        self.frames.owner(frame)
    }

    /// Live process ids.
    pub fn live_pids(&self) -> Vec<Pid> {
        self.procs
            .iter()
            .filter(|p| !p.exited)
            .map(|p| p.pid)
            .collect()
    }

    // ---- process lifecycle -----------------------------------------

    /// Create a new (empty) process.
    pub fn spawn(&mut self) -> Pid {
        let pid = self.procs.len() as Pid;
        self.procs.push(Process::new(pid));
        pid
    }

    /// Tear a process down, releasing all frames and swap slots.
    pub fn exit(&mut self, pid: Pid) -> MmResult<()> {
        let proc = self
            .procs
            .get_mut(pid as usize)
            .ok_or(MmError::NoSuchProcess(pid))?;
        proc.exited = true;
        let ranges = proc.vma_ranges();
        for r in ranges {
            self.munmap(pid, r)?;
        }
        Ok(())
    }

    /// Map anonymous memory for `pid`.
    pub fn mmap(&mut self, pid: Pid, len: u64, thp: ThpMode) -> MmResult<AddrRange> {
        self.proc_mut(pid)?.mmap(len, thp)
    }

    /// Map anonymous memory at a fixed address.
    pub fn mmap_at(&mut self, pid: Pid, start: u64, len: u64, thp: ThpMode) -> MmResult<AddrRange> {
        self.proc_mut(pid)?.mmap_at(start, len, thp)
    }

    /// Unmap the VMA exactly covering `range`, releasing its resources.
    pub fn munmap(&mut self, pid: Pid, range: AddrRange) -> MmResult<()> {
        let vma = self.proc_mut(pid)?.take_vma(range)?;
        let mut freed_pages = 0u64;
        for (_addr, pte) in vma.iter_mapped() {
            match pte.state {
                PteState::Resident(f) => {
                    self.frames.free(f);
                    freed_pages += 1;
                }
                PteState::Swapped(slot) => self.swap.discard(slot),
                PteState::None => {}
            }
        }
        let proc = self.proc_mut(pid)?;
        proc.rss_pages -= freed_pages;
        Ok(())
    }

    fn proc_mut(&mut self, pid: Pid) -> MmResult<&mut Process> {
        self.procs
            .get_mut(pid as usize)
            .ok_or(MmError::NoSuchProcess(pid))
    }

    fn proc(&self, pid: Pid) -> MmResult<&Process> {
        self.procs
            .get(pid as usize)
            .ok_or(MmError::NoSuchProcess(pid))
    }

    // ---- time -------------------------------------------------------

    /// Advance virtual time, integrating each live process's RSS so the
    /// average-RSS memory metric is time-weighted.
    pub fn advance(&mut self, delta: Ns) {
        self.clock.advance(delta);
        for p in self.procs.iter_mut().filter(|p| !p.exited) {
            p.stats.rss_time_integral += p.rss_bytes() as u128 * delta as u128;
        }
    }

    // ---- the workload-facing access path ---------------------------

    /// Apply one access batch for `pid`, servicing faults and charging the
    /// cost model. Returns what happened; `outcome.cost_ns` is the time
    /// the workload spent (the caller advances the clock with it).
    pub fn apply_access(&mut self, pid: Pid, batch: &AccessBatch) -> MmResult<AccessOutcome> {
        let mut out = AccessOutcome::default();
        let mut faults = std::mem::take(&mut self.fault_scratch);
        faults.clear();

        // Pass 1: touch resident pages in place, queue the rest.
        {
            let Self { procs, frames, rng, .. } = self;
            let proc = procs
                .get_mut(pid as usize)
                .ok_or(MmError::NoSuchProcess(pid))?;
            for vma in proc.vmas_mut() {
                let Some(isect) = vma.range.intersect(&batch.range) else {
                    continue;
                };
                let touch = |vma: &mut crate::vma::Vma,
                             frames: &mut FrameAllocator,
                             faults: &mut Vec<u64>,
                             out: &mut AccessOutcome,
                             addr: u64| {
                    match vma.touch_resident(addr) {
                        Some(f) => {
                            frames.mark_touched(f);
                            out.touched_pages += 1;
                            out.touched_huge += vma.is_huge(addr) as u64;
                        }
                        None => faults.push(addr),
                    }
                };
                match batch.pattern {
                    TouchPattern::All => {
                        for addr in isect.pages() {
                            touch(vma, frames, &mut faults, &mut out, addr);
                        }
                    }
                    TouchPattern::Stride(n) => {
                        let step = n.max(1) as u64 * PAGE_SIZE;
                        let mut addr = isect.page_aligned().start;
                        while addr < isect.end {
                            touch(vma, frames, &mut faults, &mut out, addr);
                            addr += step;
                        }
                    }
                    TouchPattern::Prob(p) => {
                        for addr in isect.pages() {
                            if rng.random::<f32>() < p {
                                touch(vma, frames, &mut faults, &mut out, addr);
                            }
                        }
                    }
                    TouchPattern::Random { count } => {
                        let nr = isect.nr_pages();
                        if nr > 0 {
                            let base = isect.page_aligned().start;
                            for _ in 0..count {
                                let page = rng.random_range(0..nr);
                                touch(vma, frames, &mut faults, &mut out, base + page * PAGE_SIZE);
                            }
                        }
                    }
                }
            }
        }

        // Pass 2: service the faults (may trigger reclaim).
        let mut stall_ns: Ns = 0;
        for &addr in &faults {
            stall_ns += self.handle_fault(pid, addr, &mut out)?;
        }
        self.fault_scratch = faults;

        // Cost model: DRAM latency + TLB walks, per logical access.
        let pages_4k = out.touched_pages - out.touched_huge;
        let ws_4k = pages_4k * PAGE_SIZE;
        let ws_2m = out.touched_huge * PAGE_SIZE;
        let (c4, c2) = access_costs(&self.machine, ws_4k, ws_2m);
        let apc = batch.accesses_per_page.max(0.0) as f64;
        let access_ns =
            ((pages_4k as f64 * c4 + out.touched_huge as f64 * c2) * apc) as Ns;

        let proc = self.proc_mut(pid)?;
        proc.stats.access_ns += access_ns;
        proc.stats.stall_ns += stall_ns;
        out.cost_ns = access_ns + stall_ns;
        Ok(out)
    }

    /// Handle a fault on `addr`: minor (first touch) or major (swap-in).
    fn handle_fault(&mut self, pid: Pid, addr: u64, out: &mut AccessOutcome) -> MmResult<Ns> {
        // Read the PTE state without holding the borrow.
        let (state, huge) = {
            let proc = self.proc(pid)?;
            let vma = proc.find_vma(addr).ok_or(MmError::Unmapped(addr))?;
            (vma.pte(addr).state, vma.is_huge(addr))
        };
        let mut cost: Ns = 0;
        let load_cost = match state {
            PteState::Resident(_) => return Ok(0), // raced with ourselves; nothing to do
            PteState::None => {
                cost += self.machine.minor_fault_ns;
                None
            }
            PteState::Swapped(slot) => {
                let ns = self.swap.load(slot, &self.machine);
                cost += ns + self.machine.major_fault_extra_ns;
                Some(())
            }
        };

        let (frame, reclaim_ns) = self.get_frame(pid, addr)?;
        cost += reclaim_ns;
        self.frames.mark_touched(frame);

        let proc = self.proc_mut(pid)?;
        let vma = proc.find_vma_mut(addr).ok_or(MmError::Unmapped(addr))?;
        let gen = vma.with_pte(addr, |pte| {
            pte.state = PteState::Resident(frame);
            pte.accessed = true;
            pte.lru_gen = pte.lru_gen.wrapping_add(1);
            pte.lru_gen
        });
        proc.rss_pages += 1;
        proc.stats.peak_rss_bytes = proc.stats.peak_rss_bytes.max(proc.rss_bytes());
        if load_cost.is_some() {
            proc.stats.major_faults += 1;
            proc.stats.swapins += 1;
            out.major_faults += 1;
        } else {
            proc.stats.minor_faults += 1;
            out.minor_faults += 1;
        }
        out.touched_pages += 1;
        out.touched_huge += huge as u64;
        self.lru.insert(LruList::Inactive, pid, addr, gen);
        let major = load_cost.is_some();
        let now = self.now();
        if major {
            daos_trace::trace!(now, SwapIn { pid, addr });
        }
        daos_trace::trace!(now, PageFault { pid, addr, major });
        Ok(cost)
    }

    /// Allocate a frame, running pressure reclaim when DRAM is full.
    /// Returns the frame and the direct-reclaim stall charged.
    fn get_frame(&mut self, pid: Pid, addr: u64) -> MmResult<(u32, Ns)> {
        if let Some(f) = self.frames.alloc(pid, addr) {
            return Ok((f, 0));
        }
        let stall = self.shrink(RECLAIM_BATCH);
        self.frames
            .alloc(pid, addr)
            .map(|f| (f, stall))
            .ok_or(MmError::OutOfMemory)
    }

    /// Pressure reclaim: evict up to `target` cold pages from the LRU
    /// lists to swap. Returns the CPU time spent (charged to the caller
    /// as direct-reclaim stall).
    fn shrink(&mut self, target: u64) -> Ns {
        let mut freed = 0u64;
        let mut cost: Ns = 0;
        // Budget prevents livelock when every queued entry is stale or
        // referenced.
        let mut budget = (self.frames.capacity() as u64 * 4).max(1024);
        let budget_start = budget;

        while freed < target && budget > 0 {
            budget -= 1;
            let Some(e) = self.lru.pop_inactive() else {
                // Refill inactive from the active list's cold tail.
                let Some(a) = self.lru.pop_active() else { break };
                if let Some(gen) = self.revalidate_bump(a.pid, a.addr, a.gen, false) {
                    self.lru.insert(LruList::Inactive, a.pid, a.addr, gen);
                }
                continue;
            };

            // Validate and check the accessed bit in one borrow.
            let verdict = {
                let Some(proc) = self.procs.get_mut(e.pid as usize) else { continue };
                let Some(vma) = proc.find_vma_mut(e.addr) else { continue };
                vma.with_pte(e.addr, |pte| {
                    if pte.lru_gen != e.gen || !pte.is_resident() {
                        None // stale
                    } else if pte.accessed {
                        // Second chance: clear and promote to active.
                        pte.accessed = false;
                        pte.lru_gen = pte.lru_gen.wrapping_add(1);
                        Some((true, pte.lru_gen))
                    } else {
                        pte.lru_gen = pte.lru_gen.wrapping_add(1);
                        Some((false, pte.lru_gen))
                    }
                })
            };
            match verdict {
                None => continue,
                Some((true, gen)) => {
                    self.lru.insert(LruList::Active, e.pid, e.addr, gen);
                }
                Some((false, _gen)) => {
                    match self.unmap_to_swap(e.pid, e.addr) {
                        Ok(ns) => {
                            cost += ns;
                            freed += 1;
                            self.kstats.pressure_reclaims += 1;
                        }
                        // Swap full: anonymous pages become unreclaimable.
                        Err(_) => break,
                    }
                }
            }
        }
        self.kstats.reclaim_ns += cost;
        daos_trace::trace!(
            self.now(),
            Reclaim { freed_pages: freed, scanned: budget_start - budget, cost_ns: cost }
        );
        cost
    }

    /// Re-validate a queued LRU entry and bump its generation; returns the
    /// new generation if still live. When `clear_accessed` is set the
    /// accessed bit is also cleared (deactivation ages the page).
    fn revalidate_bump(&mut self, pid: Pid, addr: u64, gen: u32, clear_accessed: bool) -> Option<u32> {
        let proc = self.procs.get_mut(pid as usize)?;
        let vma = proc.find_vma_mut(addr)?;
        vma.with_pte(addr, |pte| {
            if pte.lru_gen != gen || !pte.is_resident() {
                return None;
            }
            if clear_accessed {
                pte.accessed = false;
            }
            pte.lru_gen = pte.lru_gen.wrapping_add(1);
            Some(pte.lru_gen)
        })
    }

    /// Unmap one resident page to swap. Returns the *synchronous* kernel
    /// CPU cost; the device write itself is asynchronous (writeback) and
    /// only tracked in [`KernelStats::swap_write_ns`].
    fn unmap_to_swap(&mut self, pid: Pid, addr: u64) -> MmResult<Ns> {
        let (slot, store_ns) = self.swap.store(&self.machine)?;
        self.kstats.swap_write_ns += store_ns;
        let proc = self.proc_mut(pid)?;
        let vma = proc.find_vma_mut(addr).ok_or(MmError::Unmapped(addr))?;
        let frame = vma.with_pte(addr, |pte| {
            let PteState::Resident(frame) = pte.state else { return None };
            pte.state = PteState::Swapped(slot);
            pte.accessed = false;
            pte.lru_gen = pte.lru_gen.wrapping_add(1);
            Some(frame)
        });
        let Some(frame) = frame else {
            // Caller validated residency; losing the race is a bug.
            self.swap.discard(slot);
            return Err(MmError::Unmapped(addr));
        };
        proc.rss_pages -= 1;
        proc.stats.swapouts += 1;
        self.frames.free(frame);
        daos_trace::trace!(self.now(), SwapOut { pid, addr });
        Ok(self.machine.pageout_page_ns)
    }

    // ---- monitoring hooks (the "Monitoring Primitives" substrate) ---

    /// Read **and clear** the accessed bit of the page at `addr`.
    /// `None` when the address is unmapped. This is the PTE-based access
    /// check of §3.1.
    pub fn check_accessed_clear(&mut self, pid: Pid, addr: u64) -> Option<bool> {
        let proc = self.procs.get_mut(pid as usize)?;
        let vma = proc.find_vma_mut(addr)?;
        Some(vma.with_pte(addr, |pte| {
            let was = pte.accessed;
            pte.accessed = false;
            was
        }))
    }

    /// Peek at the accessed bit without clearing (ground-truth checks).
    pub fn peek_accessed(&self, pid: Pid, addr: u64) -> Option<bool> {
        let proc = self.procs.get(pid as usize)?;
        let vma = proc.find_vma(addr)?;
        Some(vma.pte(addr).accessed)
    }

    /// Physical-space access check via rmap: translate the frame at
    /// `paddr` to its owner mapping and check that PTE. Unowned frames
    /// read as "not accessed".
    pub fn check_paddr_accessed_clear(&mut self, paddr: u64) -> bool {
        match self.phys_owner(paddr) {
            Some((pid, vaddr)) => self.check_accessed_clear(pid, vaddr).unwrap_or(false),
            None => false,
        }
    }

    /// Record monitor CPU work; returns the interference to charge the
    /// running workload (shared-resource slowdown).
    pub fn charge_monitor(&mut self, ns: Ns) -> Ns {
        self.kstats.monitor_ns += ns;
        (ns as f64 * self.machine.monitor_interference) as Ns
    }

    /// Record schemes-engine CPU work; returns workload interference.
    pub fn charge_schemes(&mut self, ns: Ns) -> Ns {
        self.kstats.schemes_ns += ns;
        (ns as f64 * self.machine.monitor_interference) as Ns
    }

    // ---- scheme actions (what DAMOS applies) ------------------------

    /// Page out resident pages of `pid` within `range`.
    ///
    /// As in the kernel's reclaim path (`shrink_folio_list`'s reference
    /// check), pages whose accessed bit is set get a second chance: the
    /// bit is cleared and the page is skipped, so actively-used pages
    /// inside a matched region survive and only pages idle across two
    /// pageout attempts are evicted. Returns `(bytes_paged_out,
    /// kernel_cost_ns)`; stops early when swap fills up.
    pub fn pageout(&mut self, pid: Pid, range: AddrRange) -> MmResult<(u64, Ns)> {
        let addrs = self.resident_addrs_in(pid, range)?;
        let mut bytes = 0u64;
        let mut cost: Ns = 0;
        for addr in addrs {
            if self.reference_check(pid, addr) {
                continue;
            }
            match self.unmap_to_swap(pid, addr) {
                Ok(ns) => {
                    bytes += PAGE_SIZE;
                    cost += ns;
                    self.kstats.damos_pageouts += 1;
                }
                Err(MmError::SwapFull) => break,
                Err(e) => return Err(e),
            }
        }
        Ok((bytes, cost))
    }

    /// The reclaim reference check: if the page was referenced since the
    /// last check, clear the bit and report `true` (skip this round).
    fn reference_check(&mut self, pid: Pid, addr: u64) -> bool {
        let Some(proc) = self.procs.get_mut(pid as usize) else { return false };
        let Some(vma) = proc.find_vma_mut(addr) else { return false };
        vma.with_pte(addr, |pte| {
            if pte.accessed {
                pte.accessed = false;
                true
            } else {
                false
            }
        })
    }

    /// Page out by *physical* address range, via rmap (prec-style targets).
    pub fn pageout_paddr(&mut self, range: AddrRange) -> (u64, Ns) {
        let mut bytes = 0u64;
        let mut cost: Ns = 0;
        for paddr in range.pages() {
            if paddr >= self.machine.dram_bytes {
                break;
            }
            if let Some((pid, vaddr)) = self.phys_owner(paddr) {
                if self.reference_check(pid, vaddr) {
                    continue;
                }
                match self.unmap_to_swap(pid, vaddr) {
                    Ok(ns) => {
                        bytes += PAGE_SIZE;
                        cost += ns;
                        self.kstats.damos_pageouts += 1;
                    }
                    Err(_) => break,
                }
            }
        }
        (bytes, cost)
    }

    fn resident_addrs_in(&self, pid: Pid, range: AddrRange) -> MmResult<Vec<u64>> {
        let proc = self.proc(pid)?;
        let mut addrs = Vec::new();
        for vma in proc.vmas() {
            vma.collect_resident_in(&range, &mut addrs);
        }
        Ok(addrs)
    }

    /// Promote every fully-mapped, swap-free, 2 MiB-aligned chunk in
    /// `range` to a huge page, allocating backing frames for not-yet-
    /// faulted subpages (this is the THP *bloat* of Kwon et al.).
    /// Returns `(chunks_promoted, kernel_cost_ns)`.
    pub fn promote_huge(&mut self, pid: Pid, range: AddrRange) -> MmResult<(u64, Ns)> {
        let chunk_addrs: Vec<u64> = {
            let proc = self.proc(pid)?;
            proc.vmas()
                .iter()
                .filter(|v| v.thp != ThpMode::Never)
                .flat_map(|v| v.chunks_in(&range).collect::<Vec<_>>())
                .collect()
        };
        let mut promoted = 0u64;
        let mut cost: Ns = 0;
        'chunks: for chunk in chunk_addrs {
            // Skip chunks that are already huge or contain swapped pages
            // (khugepaged does not collapse over swap entries).
            let chunk_range = AddrRange::new(chunk, chunk + HUGE_PAGE_SIZE);
            {
                let proc = self.proc(pid)?;
                let vma = proc.find_vma(chunk).ok_or(MmError::Unmapped(chunk))?;
                if vma.is_huge(chunk) {
                    continue;
                }
                if vma.chunk_nr_swapped(chunk) > 0 {
                    continue 'chunks;
                }
            }
            // Fill holes. If DRAM runs out mid-chunk, abandon the chunk
            // (the kernel's fast path also refuses to reclaim for THP).
            let mut allocated: Vec<(u64, u32)> = Vec::new();
            let mut failed = false;
            // Fully-resident chunks (no swap, checked above) have no holes.
            let has_holes = {
                let proc = self.proc(pid)?;
                let vma = proc.find_vma(chunk).ok_or(MmError::Unmapped(chunk))?;
                vma.chunk_nr_resident(chunk) < crate::addr::PAGES_PER_HUGE
            };
            if has_holes {
                for addr in chunk_range.pages() {
                    let is_hole = {
                        let proc = self.proc(pid)?;
                        let vma = proc.find_vma(addr).ok_or(MmError::Unmapped(addr))?;
                        matches!(vma.pte(addr).state, PteState::None)
                    };
                    if !is_hole {
                        continue;
                    }
                    match self.frames.alloc(pid, addr) {
                        Some(f) => allocated.push((addr, f)),
                        None => {
                            failed = true;
                            break;
                        }
                    }
                }
            }
            if failed {
                for (_, f) in allocated {
                    self.frames.free(f);
                }
                continue;
            }
            let nr_filled = allocated.len() as u64;
            let proc = self.proc_mut(pid)?;
            for (addr, frame) in allocated {
                let vma = proc.find_vma_mut(addr).ok_or(MmError::Unmapped(addr))?;
                vma.with_pte(addr, |pte| {
                    pte.state = PteState::Resident(frame);
                    // Filled subpages are *not* accessed — that is the bloat.
                    pte.accessed = false;
                    pte.lru_gen = pte.lru_gen.wrapping_add(1);
                });
            }
            proc.rss_pages += nr_filled;
            proc.stats.peak_rss_bytes = proc.stats.peak_rss_bytes.max(proc.rss_bytes());
            proc.stats.thp_promotions += 1;
            let vma = proc.find_vma_mut(chunk).ok_or(MmError::Unmapped(chunk))?;
            vma.set_huge(chunk, true);
            promoted += 1;
            cost += self.machine.huge_alloc_ns;
        }
        if promoted > 0 {
            daos_trace::trace!(self.now(), ThpPromote { pid, chunks: promoted });
        }
        Ok((promoted, cost))
    }

    /// One khugepaged pass: promote every aligned chunk of `pid`'s
    /// THP-eligible VMAs that has at least `min_resident` resident pages
    /// (Linux's "always" THP mode promotes aggressively — the behaviour
    /// whose bloat the paper's `ethp` scheme fixes). Returns
    /// `(chunks_promoted, kernel_cost_ns)`.
    pub fn khugepaged_scan(&mut self, pid: Pid, min_resident: u64) -> MmResult<(u64, Ns)> {
        let candidates: Vec<AddrRange> = {
            let proc = self.proc(pid)?;
            let mut v = Vec::new();
            for vma in proc.vmas() {
                if vma.thp == ThpMode::Never {
                    continue;
                }
                for chunk in vma.chunks_in(&vma.range) {
                    if vma.is_huge(chunk) {
                        continue;
                    }
                    let chunk_range = AddrRange::new(chunk, chunk + HUGE_PAGE_SIZE);
                    if vma.chunk_nr_resident(chunk) >= min_resident {
                        v.push(chunk_range);
                    }
                }
            }
            v
        };
        let mut promoted = 0;
        let mut cost = 0;
        for range in candidates {
            let (p, ns) = self.promote_huge(pid, range)?;
            promoted += p;
            cost += ns;
        }
        Ok((promoted, cost))
    }

    /// Demote (split) huge chunks in `range` back to base pages, freeing
    /// subpages that were allocated by promotion but never touched.
    /// Returns `(bytes_freed, kernel_cost_ns)`.
    pub fn demote_huge(&mut self, pid: Pid, range: AddrRange) -> MmResult<(u64, Ns)> {
        let chunk_addrs: Vec<u64> = {
            let proc = self.proc(pid)?;
            proc.vmas()
                .iter()
                .flat_map(|v| v.chunks_in(&range).collect::<Vec<_>>())
                .collect()
        };
        let mut freed_bytes = 0u64;
        let mut cost: Ns = 0;
        for chunk in chunk_addrs {
            let chunk_range = AddrRange::new(chunk, chunk + HUGE_PAGE_SIZE);
            let was_huge = {
                let proc = self.proc_mut(pid)?;
                let vma = proc.find_vma_mut(chunk).ok_or(MmError::Unmapped(chunk))?;
                vma.is_huge(chunk)
            };
            if !was_huge {
                continue;
            }
            // Collect untouched resident subpages.
            let mut to_free: Vec<(u64, u32)> = Vec::new();
            {
                let proc = self.proc(pid)?;
                let vma = proc.find_vma(chunk).ok_or(MmError::Unmapped(chunk))?;
                let mut resident = Vec::new();
                vma.collect_resident_in(&chunk_range, &mut resident);
                for addr in resident {
                    if let PteState::Resident(f) = vma.pte(addr).state {
                        if !self.frames.touched(f) {
                            to_free.push((addr, f));
                        }
                    }
                }
            }
            let nr_freed = to_free.len() as u64;
            for (_, f) in &to_free {
                self.frames.free(*f);
            }
            let proc = self.proc_mut(pid)?;
            for (addr, _) in &to_free {
                let vma = proc.find_vma_mut(*addr).ok_or(MmError::Unmapped(*addr))?;
                vma.with_pte(*addr, |pte| {
                    pte.state = PteState::None;
                    pte.accessed = false;
                    pte.lru_gen = pte.lru_gen.wrapping_add(1);
                });
            }
            proc.rss_pages -= nr_freed;
            proc.stats.thp_demotions += 1;
            let vma = proc.find_vma_mut(chunk).ok_or(MmError::Unmapped(chunk))?;
            vma.set_huge(chunk, false);
            freed_bytes += nr_freed * PAGE_SIZE;
            cost += self.machine.pageout_page_ns * nr_freed.max(1);
        }
        if freed_bytes > 0 {
            daos_trace::trace!(self.now(), ThpDemote { pid, freed_bytes });
        }
        Ok((freed_bytes, cost))
    }

    /// `MADV_COLD`-style deactivation: move resident pages of `range` to
    /// the inactive LRU tail (next reclaim victims) and age them.
    pub fn mark_cold(&mut self, pid: Pid, range: AddrRange) -> MmResult<u64> {
        let addrs = self.resident_addrs_in(pid, range)?;
        let mut nr = 0u64;
        for addr in addrs {
            if let Some(gen) = self.revalidate_current(pid, addr) {
                self.lru.deactivate_to_tail(pid, addr, gen);
                nr += 1;
            }
        }
        Ok(nr)
    }

    /// Bump a page's generation, clearing its accessed bit, regardless of
    /// prior queue state. Returns the new generation if resident.
    fn revalidate_current(&mut self, pid: Pid, addr: u64) -> Option<u32> {
        let proc = self.procs.get_mut(pid as usize)?;
        let vma = proc.find_vma_mut(addr)?;
        vma.with_pte(addr, |pte| {
            if !pte.is_resident() {
                return None;
            }
            pte.accessed = false;
            pte.lru_gen = pte.lru_gen.wrapping_add(1);
            Some(pte.lru_gen)
        })
    }

    /// LRU-activate resident pages of `range` (the DAMON_LRU_SORT
    /// "prioritise hot pages" operation): they move to the active list's
    /// head, making them the last candidates for pressure reclaim.
    pub fn mark_hot(&mut self, pid: Pid, range: AddrRange) -> MmResult<u64> {
        let addrs = self.resident_addrs_in(pid, range)?;
        let mut nr = 0u64;
        for addr in addrs {
            if let Some(gen) = self.bump_gen_keep_accessed(pid, addr) {
                self.lru.insert(LruList::Active, pid, addr, gen);
                nr += 1;
            }
        }
        Ok(nr)
    }

    /// Bump a resident page's LRU generation without touching its
    /// accessed bit (activation must not erase reference information).
    fn bump_gen_keep_accessed(&mut self, pid: Pid, addr: u64) -> Option<u32> {
        let proc = self.procs.get_mut(pid as usize)?;
        let vma = proc.find_vma_mut(addr)?;
        vma.with_pte(addr, |pte| {
            if !pte.is_resident() {
                return None;
            }
            pte.lru_gen = pte.lru_gen.wrapping_add(1);
            Some(pte.lru_gen)
        })
    }

    /// `MADV_WILLNEED`-style prefetch: swap swapped pages of `range` back
    /// in (without charging the owning process a fault). Returns
    /// `(bytes_brought_in, kernel_cost_ns)`.
    pub fn willneed(&mut self, pid: Pid, range: AddrRange) -> MmResult<(u64, Ns)> {
        let swapped: Vec<u64> = {
            let proc = self.proc(pid)?;
            let mut v = Vec::new();
            for vma in proc.vmas() {
                vma.collect_swapped_in(&range, &mut v);
            }
            v
        };
        let mut bytes = 0u64;
        let mut cost: Ns = 0;
        for addr in swapped {
            let Some(frame) = self.frames.alloc(pid, addr) else { break };
            let slot = {
                let proc = self.proc(pid)?;
                let vma = proc.find_vma(addr).ok_or(MmError::Unmapped(addr))?;
                match vma.pte(addr).state {
                    PteState::Swapped(s) => s,
                    _ => {
                        self.frames.free(frame);
                        continue;
                    }
                }
            };
            cost += self.swap.load(slot, &self.machine);
            let proc = self.proc_mut(pid)?;
            let vma = proc.find_vma_mut(addr).ok_or(MmError::Unmapped(addr))?;
            let gen = vma.with_pte(addr, |pte| {
                pte.state = PteState::Resident(frame);
                pte.accessed = false;
                pte.lru_gen = pte.lru_gen.wrapping_add(1);
                pte.lru_gen
            });
            proc.rss_pages += 1;
            proc.stats.peak_rss_bytes = proc.stats.peak_rss_bytes.max(proc.rss_bytes());
            proc.stats.swapins += 1;
            self.lru.insert(LruList::Active, pid, addr, gen);
            bytes += PAGE_SIZE;
        }
        Ok((bytes, cost))
    }

    // ---- test/diagnostic helpers ------------------------------------

    /// Number of resident pages of `pid` within `range`.
    pub fn nr_resident_in(&self, pid: Pid, range: AddrRange) -> u64 {
        self.resident_addrs_in(pid, range)
            .map(|v| v.len() as u64)
            .unwrap_or(0)
    }

    /// Number of swapped pages of `pid` within `range`.
    pub fn nr_swapped_in(&self, pid: Pid, range: AddrRange) -> u64 {
        let Ok(proc) = self.proc(pid) else { return 0 };
        let mut v = Vec::new();
        for vma in proc.vmas() {
            vma.collect_swapped_in(&range, &mut v);
        }
        v.len() as u64
    }

    /// Bytes of `pid`'s address space currently huge-mapped.
    pub fn huge_bytes(&self, pid: Pid) -> u64 {
        self.proc(pid)
            .map(|p| p.vmas().iter().map(|v| v.huge_bytes()).sum())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessBatch;

    fn sys_with_dram(bytes: u64, swap: SwapConfig) -> MemorySystem {
        let mut m = MachineProfile::test_tiny();
        m.dram_bytes = bytes;
        MemorySystem::new(m, swap, 42)
    }

    fn small_sys() -> (MemorySystem, Pid, AddrRange) {
        let mut sys = sys_with_dram(64 << 20, SwapConfig::paper_zram());
        let pid = sys.spawn();
        let range = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap(); // 256 pages
        (sys, pid, range)
    }

    #[test]
    fn first_touch_minor_faults_and_builds_rss() {
        let (mut sys, pid, range) = small_sys();
        let out = sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        assert_eq!(out.touched_pages, 256);
        assert_eq!(out.minor_faults, 256);
        assert_eq!(out.major_faults, 0);
        assert_eq!(sys.rss_bytes(pid), 1 << 20);
        assert!(out.cost_ns > 0);
        // Second touch: no faults, cheaper.
        let out2 = sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        assert_eq!(out2.minor_faults, 0);
        assert!(out2.cost_ns < out.cost_ns);
    }

    #[test]
    fn accessed_bit_set_and_cleared_by_monitor_check() {
        let (mut sys, pid, range) = small_sys();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        assert_eq!(sys.peek_accessed(pid, range.start), Some(true));
        assert_eq!(sys.check_accessed_clear(pid, range.start), Some(true));
        assert_eq!(sys.check_accessed_clear(pid, range.start), Some(false));
        assert_eq!(sys.check_accessed_clear(pid, 0xdead_0000), None);
    }

    #[test]
    fn pageout_then_reaccess_major_faults() {
        let (mut sys, pid, range) = small_sys();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        // First pass clears the reference bits (second chance)…
        let (bytes, _cost) = sys.pageout(pid, range).unwrap();
        assert_eq!(bytes, 0, "referenced pages survive the first pass");
        // …the second pass evicts the now-unreferenced pages.
        let (bytes, _cost) = sys.pageout(pid, range).unwrap();
        assert_eq!(bytes, 1 << 20);
        assert_eq!(sys.rss_bytes(pid), 0);
        assert_eq!(sys.nr_swapped_in(pid, range), 256);
        let out = sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        assert_eq!(out.major_faults, 256);
        assert_eq!(sys.rss_bytes(pid), 1 << 20);
        // Major faults cost more than the original minor-fault pass.
        let st = sys.proc_stats(pid).unwrap();
        assert_eq!(st.swapins, 256);
        assert_eq!(st.swapouts, 256);
    }

    #[test]
    fn pressure_reclaim_keeps_system_under_dram_cap() {
        // 1 MiB DRAM, 2 MiB workload: must swap to survive.
        let mut sys = sys_with_dram(1 << 20, SwapConfig::paper_zram());
        let pid = sys.spawn();
        let range = sys.mmap(pid, 2 << 20, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        assert!(sys.used_dram_bytes() <= 1 << 20);
        assert!(sys.kstats.pressure_reclaims > 0);
        assert!(sys.rss_bytes(pid) <= 1 << 20);
        assert_eq!(
            sys.rss_bytes(pid) + sys.nr_swapped_in(pid, range) * PAGE_SIZE,
            2 << 20
        );
    }

    #[test]
    fn no_swap_oom_when_dram_exhausted() {
        let mut sys = sys_with_dram(1 << 20, SwapConfig::None);
        let pid = sys.spawn();
        let range = sys.mmap(pid, 2 << 20, ThpMode::Never).unwrap();
        let err = sys.apply_access(pid, &AccessBatch::all(range, 1.0));
        assert_eq!(err.unwrap_err(), MmError::OutOfMemory);
    }

    #[test]
    fn thp_promotion_bloats_and_demotion_recovers() {
        let mut sys = sys_with_dram(64 << 20, SwapConfig::paper_zram());
        let pid = sys.spawn();
        // 4 MiB aligned at a huge boundary → two aligned chunks.
        let range = sys.mmap_at(pid, 4 * HUGE_PAGE_SIZE, 2 * HUGE_PAGE_SIZE, ThpMode::Always).unwrap();
        // Touch only the first 16 pages of each chunk.
        for chunk in [range.start, range.start + HUGE_PAGE_SIZE] {
            let head = AddrRange::new(chunk, chunk + 16 * PAGE_SIZE);
            sys.apply_access(pid, &AccessBatch::all(head, 1.0)).unwrap();
        }
        let rss_before = sys.rss_bytes(pid);
        assert_eq!(rss_before, 32 * PAGE_SIZE);
        let (promoted, _) = sys.promote_huge(pid, range).unwrap();
        assert_eq!(promoted, 2);
        assert_eq!(sys.rss_bytes(pid), 2 * HUGE_PAGE_SIZE, "bloat: full chunks resident");
        assert_eq!(sys.huge_bytes(pid), 2 * HUGE_PAGE_SIZE);
        // Demote: untouched filler pages are freed again.
        let (freed, _) = sys.demote_huge(pid, range).unwrap();
        assert_eq!(freed, 2 * HUGE_PAGE_SIZE - 32 * PAGE_SIZE);
        assert_eq!(sys.rss_bytes(pid), 32 * PAGE_SIZE);
        assert_eq!(sys.huge_bytes(pid), 0);
    }

    #[test]
    fn promotion_skips_chunks_with_swapped_pages() {
        let mut sys = sys_with_dram(64 << 20, SwapConfig::paper_zram());
        let pid = sys.spawn();
        let range = sys.mmap_at(pid, 4 * HUGE_PAGE_SIZE, HUGE_PAGE_SIZE, ThpMode::Always).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        let first_page = AddrRange::new(range.start, range.start + PAGE_SIZE);
        sys.pageout(pid, first_page).unwrap(); // clears the reference bit
        sys.pageout(pid, first_page).unwrap(); // evicts
        let (promoted, _) = sys.promote_huge(pid, range).unwrap();
        assert_eq!(promoted, 0);
    }

    #[test]
    fn promotion_respects_thp_never() {
        let mut sys = sys_with_dram(64 << 20, SwapConfig::paper_zram());
        let pid = sys.spawn();
        let range = sys.mmap_at(pid, 4 * HUGE_PAGE_SIZE, HUGE_PAGE_SIZE, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        let (promoted, _) = sys.promote_huge(pid, range).unwrap();
        assert_eq!(promoted, 0);
    }

    #[test]
    fn willneed_prefetches_swapped_pages() {
        let (mut sys, pid, range) = small_sys();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        sys.pageout(pid, range).unwrap(); // reference-clearing pass
        sys.pageout(pid, range).unwrap(); // eviction pass
        let (bytes, _) = sys.willneed(pid, range).unwrap();
        assert_eq!(bytes, 1 << 20);
        assert_eq!(sys.rss_bytes(pid), 1 << 20);
        // Re-access takes no major faults now.
        let out = sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        assert_eq!(out.major_faults, 0);
    }

    #[test]
    fn mark_cold_makes_pages_first_victims() {
        // DRAM fits exactly 512 pages; map two 1 MiB areas.
        let mut sys = sys_with_dram(2 << 20, SwapConfig::paper_zram());
        let pid = sys.spawn();
        let a = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap();
        let b = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(a, 1.0)).unwrap();
        sys.apply_access(pid, &AccessBatch::all(b, 1.0)).unwrap();
        // Mark `a` cold, then map+touch a third area to force reclaim.
        sys.mark_cold(pid, a).unwrap();
        let c = sys.mmap(pid, 512 << 10, ThpMode::Never).unwrap();
        sys.apply_access(pid, &AccessBatch::all(c, 1.0)).unwrap();
        let evicted_a = sys.nr_swapped_in(pid, a);
        let evicted_b = sys.nr_swapped_in(pid, b);
        assert!(evicted_a > 0, "cold pages must be evicted");
        assert!(
            evicted_a >= evicted_b * 4,
            "cold area should absorb evictions: a={evicted_a} b={evicted_b}"
        );
    }

    #[test]
    fn munmap_releases_everything() {
        let (mut sys, pid, range) = small_sys();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        let head = AddrRange::new(range.start, range.start + 4 * PAGE_SIZE);
        sys.pageout(pid, head).unwrap();
        sys.pageout(pid, head).unwrap();
        assert!(sys.swap().used_bytes() > 0);
        let used_before = sys.used_dram_bytes();
        assert!(used_before > 0);
        sys.munmap(pid, range).unwrap();
        assert_eq!(sys.used_dram_bytes(), 0);
        assert_eq!(sys.rss_bytes(pid), 0);
        assert_eq!(sys.swap().used_bytes(), 0);
    }

    #[test]
    fn exit_tears_down() {
        let (mut sys, pid, range) = small_sys();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        sys.exit(pid).unwrap();
        assert_eq!(sys.used_dram_bytes(), 0);
        assert!(sys.live_pids().is_empty());
    }

    #[test]
    fn advance_integrates_rss() {
        let (mut sys, pid, range) = small_sys();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        sys.advance(1000);
        let st = sys.proc_stats(pid).unwrap();
        assert_eq!(st.avg_rss_bytes(1000), 1 << 20);
    }

    #[test]
    fn phys_owner_roundtrip() {
        let (mut sys, pid, range) = small_sys();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        // Find some owned frame.
        let mut found = false;
        for paddr in sys.phys_space().pages().take(4096) {
            if let Some((p, vaddr)) = sys.phys_owner(paddr) {
                assert_eq!(p, pid);
                assert!(range.contains(vaddr));
                found = true;
                break;
            }
        }
        assert!(found);
    }

    #[test]
    fn paddr_check_clears_underlying_pte() {
        let (mut sys, pid, range) = small_sys();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        let paddr = sys
            .phys_space()
            .pages()
            .find(|p| sys.phys_owner(*p).is_some())
            .unwrap();
        assert!(sys.check_paddr_accessed_clear(paddr));
        assert!(!sys.check_paddr_accessed_clear(paddr), "bit cleared");
    }

    #[test]
    fn random_pattern_touches_subset() {
        let (mut sys, pid, range) = small_sys();
        let out = sys.apply_access(pid, &AccessBatch::random(range, 32, 1.0)).unwrap();
        assert!(out.touched_pages <= 32);
        assert!(out.touched_pages > 0);
    }

    #[test]
    fn stride_pattern_touch_count() {
        let (mut sys, pid, range) = small_sys();
        let out = sys.apply_access(pid, &AccessBatch::stride(range, 4, 1.0)).unwrap();
        assert_eq!(out.touched_pages, 64); // 256 pages / 4
    }

    #[test]
    fn monitor_charge_returns_interference() {
        let (mut sys, _pid, _range) = small_sys();
        let inter = sys.charge_monitor(1000);
        assert!(inter > 0 && inter < 1000);
        assert_eq!(sys.kstats.monitor_ns, 1000);
    }
}
