//! Substrate error types.

use crate::addr::AddrRange;
use crate::process::Pid;

/// Errors surfaced by the memory-management substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MmError {
    /// The referenced process does not exist.
    NoSuchProcess(Pid),
    /// No VMA maps the given address.
    Unmapped(u64),
    /// The given range is not fully covered by existing VMAs.
    BadRange(AddrRange),
    /// Physical memory and swap are both exhausted.
    OutOfMemory,
    /// The swap device has no free capacity.
    SwapFull,
    /// The requested mapping would overlap an existing VMA.
    MappingOverlap(AddrRange),
    /// Requested mapping length was zero or not representable.
    BadLength(u64),
}

impl core::fmt::Display for MmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MmError::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
            MmError::Unmapped(addr) => write!(f, "address {addr:#x} is not mapped"),
            MmError::BadRange(r) => write!(f, "range {r} is not fully mapped"),
            MmError::OutOfMemory => write!(f, "out of memory (DRAM and swap exhausted)"),
            MmError::SwapFull => write!(f, "swap device full"),
            MmError::MappingOverlap(r) => write!(f, "mapping overlaps existing VMA at {r}"),
            MmError::BadLength(l) => write!(f, "bad mapping length: {l}"),
        }
    }
}

impl std::error::Error for MmError {}

/// Convenience result alias for substrate operations.
pub type MmResult<T> = Result<T, MmError>;
