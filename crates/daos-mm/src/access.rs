//! Workload → substrate access descriptions.
//!
//! Workloads describe one epoch of memory behaviour as a set of
//! [`AccessBatch`]es. The substrate walks the selected pages, sets PTE
//! accessed bits, services faults, and charges the machine-dependent cost.
//! This is the fidelity level DAMON itself observes — *which pages are
//! touched when* — so the monitoring and scheme code paths are exercised
//! exactly as on real hardware.


use crate::addr::AddrRange;

/// Which pages of the batch's range are touched this epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TouchPattern {
    /// Every page in the range.
    All,
    /// Every `n`-th page (stride in pages; `Stride(1)` == `All`).
    Stride(u32),
    /// Each page independently with the given probability.
    Prob(f32),
    /// `count` uniformly random pages (with replacement) in the range.
    Random {
        /// Number of random page draws.
        count: u32,
    },
}

/// One epoch's worth of accesses to one address range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessBatch {
    /// Target virtual address range.
    pub range: AddrRange,
    /// Page-selection pattern within the range.
    pub pattern: TouchPattern,
    /// Average number of CPU loads/stores issued to each touched page —
    /// a pure cost multiplier capturing access intensity (a page scanned
    /// once is cheaper than a page hammered in a loop).
    pub accesses_per_page: f32,
}

impl AccessBatch {
    /// Touch every page of `range` once each, `apc` accesses per page.
    pub fn all(range: AddrRange, apc: f32) -> Self {
        Self { range, pattern: TouchPattern::All, accesses_per_page: apc }
    }

    /// Touch every `stride`-th page.
    pub fn stride(range: AddrRange, stride: u32, apc: f32) -> Self {
        Self { range, pattern: TouchPattern::Stride(stride.max(1)), accesses_per_page: apc }
    }

    /// Touch each page with probability `p`.
    pub fn prob(range: AddrRange, p: f32, apc: f32) -> Self {
        Self { range, pattern: TouchPattern::Prob(p.clamp(0.0, 1.0)), accesses_per_page: apc }
    }

    /// Touch `count` random pages.
    pub fn random(range: AddrRange, count: u32, apc: f32) -> Self {
        Self { range, pattern: TouchPattern::Random { count }, accesses_per_page: apc }
    }

    /// Expected number of page touches this batch will make.
    pub fn expected_touches(&self) -> f64 {
        let pages = self.range.nr_pages() as f64;
        match self.pattern {
            TouchPattern::All => pages,
            TouchPattern::Stride(n) => (pages / n as f64).ceil(),
            TouchPattern::Prob(p) => pages * p as f64,
            TouchPattern::Random { count } => {
                // Distinct pages hit by `count` draws with replacement.
                let c = count as f64;
                if pages == 0.0 {
                    0.0
                } else {
                    pages * (1.0 - (1.0 - 1.0 / pages).powf(c))
                }
            }
        }
    }
}

/// Result of applying one batch: how much work it turned into.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Pages actually touched.
    pub touched_pages: u64,
    /// Touched pages that were mapped by a huge chunk.
    pub touched_huge: u64,
    /// Minor faults taken.
    pub minor_faults: u64,
    /// Major faults taken (swap-ins).
    pub major_faults: u64,
    /// Total nanoseconds charged (access + fault + reclaim stall).
    pub cost_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    fn range(pages: u64) -> AddrRange {
        AddrRange::new(0x10000, 0x10000 + pages * PAGE_SIZE)
    }

    #[test]
    fn expected_touches_all_and_stride() {
        assert_eq!(AccessBatch::all(range(10), 1.0).expected_touches(), 10.0);
        assert_eq!(AccessBatch::stride(range(10), 2, 1.0).expected_touches(), 5.0);
        assert_eq!(AccessBatch::stride(range(10), 3, 1.0).expected_touches(), 4.0);
        // stride 0 coerced to 1
        assert_eq!(AccessBatch::stride(range(4), 0, 1.0).expected_touches(), 4.0);
    }

    #[test]
    fn expected_touches_prob_clamped() {
        let b = AccessBatch::prob(range(100), 1.5, 1.0);
        assert_eq!(b.expected_touches(), 100.0);
        let b = AccessBatch::prob(range(100), -0.5, 1.0);
        assert_eq!(b.expected_touches(), 0.0);
    }

    #[test]
    fn expected_touches_random_saturates() {
        let few = AccessBatch::random(range(1000), 10, 1.0).expected_touches();
        assert!((9.9..=10.0).contains(&few), "{few}");
        let many = AccessBatch::random(range(10), 10_000, 1.0).expected_touches();
        assert!(many > 9.99 && many <= 10.0);
    }
}


use daos_util::json::{self, FromJson, Json, JsonError, ToJson};

impl ToJson for TouchPattern {
    fn to_json(&self) -> Json {
        match self {
            TouchPattern::All => Json::Str("All".into()),
            TouchPattern::Stride(n) => json::tagged("Stride", n.to_json()),
            TouchPattern::Prob(p) => json::tagged("Prob", p.to_json()),
            TouchPattern::Random { count } => json::tagged(
                "Random",
                Json::Object(vec![("count".into(), count.to_json())]),
            ),
        }
    }
}

impl FromJson for TouchPattern {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Json::Str(s) = v {
            return match s.as_str() {
                "All" => Ok(TouchPattern::All),
                other => Err(JsonError::msg(format!("unknown TouchPattern '{other}'"))),
            };
        }
        let (tag, payload) = json::untag(v)?;
        match tag {
            "Stride" => Ok(TouchPattern::Stride(u32::from_json(payload)?)),
            "Prob" => Ok(TouchPattern::Prob(f32::from_json(payload)?)),
            "Random" => Ok(TouchPattern::Random { count: payload.field("count")? }),
            other => Err(JsonError::msg(format!("unknown TouchPattern '{other}'"))),
        }
    }
}

daos_util::json_struct!(AccessBatch { range, pattern, accesses_per_page });
