//! Simulated processes: VMA bookkeeping and address-space layout.

use crate::addr::{page_align_up, AddrRange, PAGE_SIZE};
use crate::error::{MmError, MmResult};
use crate::stats::ProcStats;
use crate::vma::{ThpMode, Vma};

/// Process identifier (dense index into the system's process table).
pub type Pid = u32;

/// Base of the simulated heap/mmap area. Leaving a gap below mirrors the
/// real layout (text/data below, then a gap, then anonymous mappings) that
/// the paper's Fig. 6 visualisation works around.
pub const MMAP_BASE: u64 = 0x1000_0000;
/// Gap left between consecutive anonymous mappings.
pub const MMAP_GAP: u64 = 16 * PAGE_SIZE;
/// Base of the far "stack-like" area, creating the large address-space gap
/// mentioned in §4.1.
pub const STACK_BASE: u64 = 0x7f00_0000_0000;

/// A simulated process: a sorted list of VMAs plus statistics.
#[derive(Debug, Clone)]
pub struct Process {
    /// This process's identifier.
    pub pid: Pid,
    /// Sorted, non-overlapping virtual memory areas.
    vmas: Vec<Vma>,
    /// Next address the bump allocator hands out for anonymous mmap.
    next_mmap: u64,
    /// Resident pages across all VMAs (maintained incrementally).
    pub rss_pages: u64,
    /// Lifetime statistics.
    pub stats: ProcStats,
    /// Whether the process has exited (VMAs torn down).
    pub exited: bool,
}

impl Process {
    /// Create an empty process.
    pub fn new(pid: Pid) -> Self {
        Self {
            pid,
            vmas: Vec::new(),
            next_mmap: MMAP_BASE,
            rss_pages: 0,
            stats: ProcStats::default(),
            exited: false,
        }
    }

    /// Resident-set size in bytes.
    #[inline]
    pub fn rss_bytes(&self) -> u64 {
        self.rss_pages * PAGE_SIZE
    }

    /// Map `len` bytes of anonymous memory at an allocator-chosen address.
    pub fn mmap(&mut self, len: u64, thp: ThpMode) -> MmResult<AddrRange> {
        if len == 0 {
            return Err(MmError::BadLength(0));
        }
        let len = page_align_up(len);
        let start = self.next_mmap;
        let range = AddrRange::new(start, start + len);
        self.next_mmap = range.end + MMAP_GAP;
        self.insert_vma(Vma::new(range, thp))?;
        Ok(range)
    }

    /// Map `len` bytes at a fixed address (tests, stack areas).
    pub fn mmap_at(&mut self, start: u64, len: u64, thp: ThpMode) -> MmResult<AddrRange> {
        if len == 0 {
            return Err(MmError::BadLength(0));
        }
        let len = page_align_up(len);
        let range = AddrRange::new(start, start + len);
        self.insert_vma(Vma::new(range, thp))?;
        Ok(range)
    }

    fn insert_vma(&mut self, vma: Vma) -> MmResult<()> {
        let pos = self.vmas.partition_point(|v| v.range.start < vma.range.start);
        let overlaps_prev = pos > 0 && self.vmas[pos - 1].range.overlaps(&vma.range);
        let overlaps_next = pos < self.vmas.len() && self.vmas[pos].range.overlaps(&vma.range);
        if overlaps_prev || overlaps_next {
            return Err(MmError::MappingOverlap(vma.range));
        }
        self.vmas.insert(pos, vma);
        Ok(())
    }

    /// Remove the VMA exactly covering `range`; returns it so the caller
    /// can release frames/slots. (Partial unmap is not modelled — the
    /// workloads only map and unmap whole areas.)
    pub fn take_vma(&mut self, range: AddrRange) -> MmResult<Vma> {
        let pos = self
            .vmas
            .iter()
            .position(|v| v.range == range)
            .ok_or(MmError::BadRange(range))?;
        Ok(self.vmas.remove(pos))
    }

    /// The VMA containing `addr`.
    #[inline]
    pub fn find_vma(&self, addr: u64) -> Option<&Vma> {
        let pos = self.vmas.partition_point(|v| v.range.end <= addr);
        self.vmas.get(pos).filter(|v| v.range.contains(addr))
    }

    /// Mutable variant of [`Self::find_vma`].
    #[inline]
    pub fn find_vma_mut(&mut self, addr: u64) -> Option<&mut Vma> {
        let pos = self.vmas.partition_point(|v| v.range.end <= addr);
        self.vmas.get_mut(pos).filter(|v| v.range.contains(addr))
    }

    /// All VMA ranges, sorted — what the virtual-address monitoring
    /// primitive reads to construct/refresh its target regions.
    pub fn vma_ranges(&self) -> Vec<AddrRange> {
        self.vmas.iter().map(|v| v.range).collect()
    }

    /// Shared iteration over VMAs.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// Mutable iteration over VMAs.
    pub fn vmas_mut(&mut self) -> &mut [Vma] {
        &mut self.vmas
    }

    /// Total mapped bytes (virtual size).
    pub fn vsize_bytes(&self) -> u64 {
        self.vmas.iter().map(|v| v.range.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_assigns_disjoint_ranges() {
        let mut p = Process::new(0);
        let a = p.mmap(1 << 20, ThpMode::Never).unwrap();
        let b = p.mmap(1 << 20, ThpMode::Never).unwrap();
        assert!(!a.overlaps(&b));
        assert!(b.start >= a.end + MMAP_GAP);
        assert_eq!(p.vma_ranges(), vec![a, b]);
        assert_eq!(p.vsize_bytes(), 2 << 20);
    }

    #[test]
    fn mmap_zero_len_rejected() {
        let mut p = Process::new(0);
        assert_eq!(p.mmap(0, ThpMode::Never), Err(MmError::BadLength(0)));
    }

    #[test]
    fn mmap_rounds_to_pages() {
        let mut p = Process::new(0);
        let r = p.mmap(1, ThpMode::Never).unwrap();
        assert_eq!(r.len(), PAGE_SIZE);
    }

    #[test]
    fn find_vma_boundaries() {
        let mut p = Process::new(0);
        let a = p.mmap_at(0x10000, 0x4000, ThpMode::Never).unwrap();
        assert!(p.find_vma(a.start).is_some());
        assert!(p.find_vma(a.end - 1).is_some());
        assert!(p.find_vma(a.end).is_none());
        assert!(p.find_vma(a.start - 1).is_none());
    }

    #[test]
    fn overlap_rejected() {
        let mut p = Process::new(0);
        p.mmap_at(0x10000, 0x4000, ThpMode::Never).unwrap();
        assert!(matches!(
            p.mmap_at(0x12000, 0x4000, ThpMode::Never),
            Err(MmError::MappingOverlap(_))
        ));
        // Adjacent (non-overlapping) is fine.
        assert!(p.mmap_at(0x14000, 0x1000, ThpMode::Never).is_ok());
    }

    #[test]
    fn take_vma_removes() {
        let mut p = Process::new(0);
        let a = p.mmap(1 << 20, ThpMode::Never).unwrap();
        let vma = p.take_vma(a).unwrap();
        assert_eq!(vma.range, a);
        assert!(p.find_vma(a.start).is_none());
        assert_eq!(p.take_vma(a), Err(MmError::BadRange(a)));
    }

    #[test]
    fn stack_area_creates_gap() {
        let mut p = Process::new(0);
        let heap = p.mmap(1 << 20, ThpMode::Never).unwrap();
        let stack = p.mmap_at(STACK_BASE, 1 << 20, ThpMode::Never).unwrap();
        assert!(stack.start - heap.end > (1 << 30), "big gap as in Fig. 6");
        let ranges = p.vma_ranges();
        assert_eq!(ranges.len(), 2);
        assert!(ranges.windows(2).all(|w| w[0].end <= w[1].start));
    }
}
