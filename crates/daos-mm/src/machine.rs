//! Machine profiles (Table 2 of the paper).
//!
//! The paper evaluates on three AWS EC2 bare-metal instance types whose
//! hardware balance drives the per-machine differences in Figures 4 and 8:
//!
//! | Instance  | CPU              | DRAM    | Character            |
//! |-----------|------------------|---------|-----------------------|
//! | i3.metal  | 3.0 GHz × 36 vCPU| 128 GiB | storage/IO optimised  |
//! | m5d.metal | 3.1 GHz × 48 vCPU| 96 GiB  | balanced              |
//! | z1d.metal | 4.0 GHz × 24 vCPU| 96 GiB  | compute optimised     |
//!
//! We reproduce those machines as cost-model parameter sets. DRAM capacity
//! is scaled down by 256× (the guest VM in the paper used a quarter of the
//! host's memory; our workload footprints are scaled down by the same
//! factor), preserving all capacity *ratios*.


use crate::clock::Ns;

/// Scale factor between the paper's hardware sizes and the simulated ones.
pub const CAPACITY_SCALE: u64 = 256;

const GIB: u64 = 1 << 30;

/// A hardware cost-model profile for one machine type.
///
/// Latencies are per-event nanosecond costs charged by the substrate; the
/// relative magnitudes (DRAM ≪ zram ≪ file swap) match published device
/// numbers the paper cites (storage about one order of magnitude slower
/// than DRAM for fast devices).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Human-readable instance name, e.g. `"i3.metal"`.
    pub name: String,
    /// Core clock in GHz; scales all CPU-bound work.
    pub cpu_ghz: f64,
    /// Number of vCPUs (used to dilute monitoring-thread interference).
    pub nr_cpus: u32,
    /// DRAM available to the guest in bytes (already scaled down).
    pub dram_bytes: u64,
    /// Average DRAM access latency charged per touched page, ns.
    pub dram_latency_ns: f64,
    /// Data-TLB entries covering 4 KiB pages.
    pub tlb_entries_4k: u32,
    /// Data-TLB entries covering 2 MiB pages.
    pub tlb_entries_2m: u32,
    /// Cost of a TLB miss (page-table walk), ns.
    pub tlb_miss_penalty_ns: f64,
    /// Cost of a minor page fault (anonymous page allocation + zeroing), ns.
    pub minor_fault_ns: Ns,
    /// Extra cost of a major fault beyond the swap-device read itself, ns.
    pub major_fault_extra_ns: Ns,
    /// Per-page zram compress+store cost, ns (CPU-bound, so scaled by clock).
    pub zram_store_ns: Ns,
    /// Per-page zram load+decompress cost, ns.
    pub zram_load_ns: Ns,
    /// Per-page file/NVMe swap write cost, ns.
    pub file_swap_write_ns: Ns,
    /// Per-page file/NVMe swap read cost, ns.
    pub file_swap_read_ns: Ns,
    /// Kernel CPU cost to unmap + queue one page for pageout, ns.
    pub pageout_page_ns: Ns,
    /// Cost to allocate/assemble one 2 MiB huge page (compaction etc.), ns.
    pub huge_alloc_ns: Ns,
    /// Cost of one monitor access check (read+clear one accessed bit), ns.
    pub access_check_ns: Ns,
    /// Multiplier on rmap-based (physical) checks relative to VMA walks.
    pub rmap_check_factor: f64,
    /// Fraction of monitoring-thread CPU time that surfaces as workload
    /// slowdown (shared memory bandwidth / lock contention).
    pub monitor_interference: f64,
}

impl MachineProfile {
    /// i3.metal: storage-optimised, 3.0 GHz × 36 vCPU, 128 GiB DRAM.
    /// Fast NVMe makes its file swap the cheapest of the three.
    pub fn i3_metal() -> Self {
        Self::base("i3.metal", 3.0, 36, 128 * GIB / CAPACITY_SCALE)
            .with_file_swap(9_000, 300_000)
    }

    /// m5d.metal: balanced, 3.1 GHz × 48 vCPU, 96 GiB DRAM.
    pub fn m5d_metal() -> Self {
        Self::base("m5d.metal", 3.1, 48, 96 * GIB / CAPACITY_SCALE)
            .with_file_swap(12_000, 450_000)
    }

    /// z1d.metal: compute-optimised, 4.0 GHz × 24 vCPU, 96 GiB DRAM.
    /// The fast clock shrinks CPU-bound costs, so memory stalls weigh
    /// relatively more — the property behind its distinct Fig. 4 patterns.
    pub fn z1d_metal() -> Self {
        Self::base("z1d.metal", 4.0, 24, 96 * GIB / CAPACITY_SCALE)
            .with_file_swap(11_000, 380_000)
    }

    /// All three paper machines, in the paper's order.
    pub fn paper_machines() -> Vec<MachineProfile> {
        vec![Self::i3_metal(), Self::m5d_metal(), Self::z1d_metal()]
    }

    fn base(name: &str, cpu_ghz: f64, nr_cpus: u32, dram_bytes: u64) -> Self {
        // CPU-bound costs scale inversely with clock speed relative to a
        // 3.0 GHz reference part.
        let cpu_scale = 3.0 / cpu_ghz;
        let scale = |ns: f64| -> Ns { (ns * cpu_scale) as Ns };
        Self {
            name: name.to_string(),
            cpu_ghz,
            nr_cpus,
            dram_bytes,
            dram_latency_ns: 85.0,
            // TLB reach is scaled down with the footprints (the real
            // parts cover ~6 MiB / ~2 GiB; our workloads are ~64× smaller
            // than the paper's, so the reach shrinks accordingly): 2 MiB
            // of 4 KiB reach, 128 MiB of 2 MiB reach.
            tlb_entries_4k: 512,
            tlb_entries_2m: 64,
            tlb_miss_penalty_ns: 42.0 * cpu_scale,
            // Fault-side (synchronous) latencies are dilated ~40× versus
            // raw device numbers: footprints are scaled down 64×, so per-
            // fault costs scale up to preserve the paper's refault-storm
            // slowdowns (splash2x/ocean_ncp's 78 % under untuned prcl).
            // Write-side costs stay raw: pageout is asynchronous.
            minor_fault_ns: scale(2_500.0),
            major_fault_extra_ns: scale(12_000.0),
            zram_store_ns: scale(8_000.0),
            zram_load_ns: scale(120_000.0),
            file_swap_write_ns: 12_000,
            file_swap_read_ns: 400_000,
            pageout_page_ns: scale(1_200.0),
            huge_alloc_ns: scale(90_000.0),
            access_check_ns: scale(120.0),
            rmap_check_factor: 1.3,
            monitor_interference: 0.35,
        }
    }

    fn with_file_swap(mut self, write_ns: Ns, read_ns: Ns) -> Self {
        self.file_swap_write_ns = write_ns;
        self.file_swap_read_ns = read_ns;
        self
    }

    /// Bytes of address space one 4 KiB TLB entry set covers.
    pub fn tlb_coverage_4k(&self) -> u64 {
        self.tlb_entries_4k as u64 * crate::addr::PAGE_SIZE
    }

    /// Bytes of address space the 2 MiB TLB entry set covers.
    pub fn tlb_coverage_2m(&self) -> u64 {
        self.tlb_entries_2m as u64 * crate::addr::HUGE_PAGE_SIZE
    }

    /// A tiny profile for fast unit tests: 3 GHz, 64 MiB DRAM.
    pub fn test_tiny() -> Self {
        Self::base("test-tiny", 3.0, 4, 64 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machines_match_table2() {
        let machines = MachineProfile::paper_machines();
        assert_eq!(machines.len(), 3);
        let i3 = &machines[0];
        assert_eq!(i3.name, "i3.metal");
        assert_eq!(i3.cpu_ghz, 3.0);
        assert_eq!(i3.nr_cpus, 36);
        assert_eq!(i3.dram_bytes * CAPACITY_SCALE, 128 * GIB);

        let m5d = &machines[1];
        assert_eq!((m5d.cpu_ghz * 10.0) as u32, 31);
        assert_eq!(m5d.nr_cpus, 48);
        assert_eq!(m5d.dram_bytes * CAPACITY_SCALE, 96 * GIB);

        let z1d = &machines[2];
        assert_eq!(z1d.cpu_ghz, 4.0);
        assert_eq!(z1d.nr_cpus, 24);
        assert_eq!(z1d.dram_bytes * CAPACITY_SCALE, 96 * GIB);
    }

    #[test]
    fn faster_clock_means_cheaper_cpu_work() {
        let i3 = MachineProfile::i3_metal();
        let z1d = MachineProfile::z1d_metal();
        assert!(z1d.minor_fault_ns < i3.minor_fault_ns);
        assert!(z1d.zram_store_ns < i3.zram_store_ns);
        // DRAM latency is clock-independent.
        assert_eq!(z1d.dram_latency_ns, i3.dram_latency_ns);
    }

    #[test]
    fn swap_slower_than_dram_but_same_order_regime() {
        // The paper's premise: modern storage is ~1 order of magnitude
        // slower than DRAM, so zram/file must cost more than a DRAM touch
        // but far less than a millisecond.
        for m in MachineProfile::paper_machines() {
            assert!(m.zram_load_ns as f64 > 10.0 * m.dram_latency_ns);
            assert!(m.file_swap_read_ns > m.zram_load_ns / 2);
            assert!(m.file_swap_read_ns < 1_000_000);
        }
    }

    #[test]
    fn tlb_coverage() {
        let m = MachineProfile::test_tiny();
        assert_eq!(m.tlb_coverage_4k(), 512 * 4096);
        assert_eq!(m.tlb_coverage_2m(), 64 * 2 * 1024 * 1024);
        assert!(m.tlb_coverage_2m() > m.tlb_coverage_4k());
    }
}


daos_util::json_struct!(MachineProfile {
    name, cpu_ghz, nr_cpus, dram_bytes, dram_latency_ns, tlb_entries_4k,
    tlb_entries_2m, tlb_miss_penalty_ns, minor_fault_ns,
    major_fault_extra_ns, zram_store_ns, zram_load_ns, file_swap_write_ns,
    file_swap_read_ns, pageout_page_ns, huge_alloc_ns, access_check_ns,
    rmap_check_factor, monitor_interference,
});
