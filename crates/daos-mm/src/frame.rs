//! Physical page-frame allocator.
//!
//! Frames are fixed 4 KiB units identified by a dense `FrameId`. The
//! allocator also stores the reverse-mapping metadata (`rmap`): which
//! `(process, virtual address)` currently owns each frame. That is exactly
//! the information the paper's physical-address monitoring primitive needs
//! ("uses the mappings from physical address to virtual addresses (rmap)
//! instead of struct vma", §3.1).

use crate::addr::PAGE_SIZE;
use crate::process::Pid;

/// Identifier of a physical page frame (dense, 0-based).
pub type FrameId = u32;

/// Per-frame metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Owning `(process, page-aligned virtual address)` when mapped.
    pub owner: Option<(Pid, u64)>,
    /// Whether the CPU touched this frame since it was mapped. Used to
    /// identify THP-bloat subpages that were allocated by a huge-page
    /// promotion but never accessed.
    pub touched: bool,
}

impl FrameMeta {
    const FREE: FrameMeta = FrameMeta { owner: None, touched: false };
}

/// A dense allocator over a fixed number of physical frames.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    meta: Vec<FrameMeta>,
    free: Vec<FrameId>,
}

impl FrameAllocator {
    /// Build an allocator managing `capacity_bytes` of physical memory.
    pub fn new(capacity_bytes: u64) -> Self {
        let nr = (capacity_bytes / PAGE_SIZE) as usize;
        Self {
            meta: vec![FrameMeta::FREE; nr],
            // LIFO free list: freshly freed frames are reused first, which
            // is also what the kernel's per-cpu page lists encourage.
            free: (0..nr as FrameId).rev().collect(),
        }
    }

    /// Total number of frames.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.meta.len()
    }

    /// Number of currently free frames.
    #[inline]
    pub fn nr_free(&self) -> usize {
        self.free.len()
    }

    /// Number of currently allocated frames.
    #[inline]
    pub fn nr_used(&self) -> usize {
        self.capacity() - self.nr_free()
    }

    /// Bytes of physical memory in use.
    #[inline]
    pub fn used_bytes(&self) -> u64 {
        self.nr_used() as u64 * PAGE_SIZE
    }

    /// Allocate one frame for `(pid, vaddr)`. Returns `None` when DRAM is
    /// exhausted — the caller is expected to reclaim and retry.
    #[inline]
    pub fn alloc(&mut self, pid: Pid, vaddr: u64) -> Option<FrameId> {
        let id = self.free.pop()?;
        self.meta[id as usize] = FrameMeta { owner: Some((pid, vaddr)), touched: false };
        Some(id)
    }

    /// Release a frame back to the free pool.
    ///
    /// # Panics
    /// Panics (in debug builds) if the frame is already free — that would
    /// be a double-free bug in the substrate.
    #[inline]
    pub fn free(&mut self, id: FrameId) {
        debug_assert!(
            self.meta[id as usize].owner.is_some(),
            "double free of frame {id}"
        );
        self.meta[id as usize] = FrameMeta::FREE;
        self.free.push(id);
    }

    /// The rmap lookup: owner of a frame, if mapped.
    #[inline]
    pub fn owner(&self, id: FrameId) -> Option<(Pid, u64)> {
        self.meta.get(id as usize).and_then(|m| m.owner)
    }

    /// Whether the frame has been touched since it was mapped.
    #[inline]
    pub fn touched(&self, id: FrameId) -> bool {
        self.meta[id as usize].touched
    }

    /// Record a CPU touch of the frame.
    #[inline]
    pub fn mark_touched(&mut self, id: FrameId) {
        self.meta[id as usize].touched = true;
    }

    /// Iterate over `(frame, meta)` of all frames; the physical-address
    /// monitoring primitive walks this.
    pub fn iter(&self) -> impl Iterator<Item = (FrameId, &FrameMeta)> {
        self.meta.iter().enumerate().map(|(i, m)| (i as FrameId, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut fa = FrameAllocator::new(16 * PAGE_SIZE);
        assert_eq!(fa.capacity(), 16);
        assert_eq!(fa.nr_free(), 16);
        let f = fa.alloc(1, 0x1000).unwrap();
        assert_eq!(fa.nr_used(), 1);
        assert_eq!(fa.owner(f), Some((1, 0x1000)));
        assert!(!fa.touched(f));
        fa.mark_touched(f);
        assert!(fa.touched(f));
        fa.free(f);
        assert_eq!(fa.nr_free(), 16);
        assert_eq!(fa.owner(f), None);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut fa = FrameAllocator::new(2 * PAGE_SIZE);
        assert!(fa.alloc(1, 0).is_some());
        assert!(fa.alloc(1, PAGE_SIZE).is_some());
        assert!(fa.alloc(1, 2 * PAGE_SIZE).is_none());
    }

    #[test]
    fn freed_frame_is_reused_lifo() {
        let mut fa = FrameAllocator::new(4 * PAGE_SIZE);
        let a = fa.alloc(1, 0).unwrap();
        let _b = fa.alloc(1, PAGE_SIZE).unwrap();
        fa.free(a);
        let c = fa.alloc(2, 0x9000).unwrap();
        assert_eq!(c, a, "LIFO reuse of the freshest frame");
        assert_eq!(fa.owner(c), Some((2, 0x9000)));
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn double_free_panics() {
        let mut fa = FrameAllocator::new(PAGE_SIZE);
        let f = fa.alloc(1, 0).unwrap();
        fa.free(f);
        fa.free(f);
    }

    #[test]
    fn touched_resets_on_remap() {
        let mut fa = FrameAllocator::new(PAGE_SIZE);
        let f = fa.alloc(1, 0).unwrap();
        fa.mark_touched(f);
        fa.free(f);
        let f2 = fa.alloc(1, 0x2000).unwrap();
        assert_eq!(f, f2);
        assert!(!fa.touched(f2), "touch state must not leak across owners");
    }
}
