//! Physical page-frame allocator.
//!
//! Frames are fixed 4 KiB units identified by a dense `FrameId`. The
//! allocator also stores the reverse-mapping metadata (`rmap`): which
//! `(process, virtual address)` currently owns each frame. That is exactly
//! the information the paper's physical-address monitoring primitive needs
//! ("uses the mappings from physical address to virtual addresses (rmap)
//! instead of struct vma", §3.1).
//!
//! Metadata is held in lazily materialised slabs of [`SLAB_FRAMES`]
//! entries. A machine with 128 GiB of DRAM has ~33 M frames; eagerly
//! building a `Vec<FrameMeta>` (plus a full free list) for all of them
//! made `FrameAllocator::new` the dominant cost of constructing a
//! simulated machine. Frames are instead handed out from a watermark
//! (`next_fresh`) in ascending order — identical to the old free-list
//! order — and a slab's metadata exists only once a frame in it has been
//! allocated at least once. Freed frames go to a LIFO recycle list and
//! are preferred over fresh ones, preserving the kernel-like reuse
//! behaviour the old allocator had.

use crate::addr::PAGE_SIZE;
use crate::process::Pid;

/// Identifier of a physical page frame (dense, 0-based).
pub type FrameId = u32;

/// Frames of metadata per lazily-allocated slab (16 MiB of DRAM each).
pub const SLAB_FRAMES: usize = 4096;

/// Per-frame metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Owning `(process, page-aligned virtual address)` when mapped.
    pub owner: Option<(Pid, u64)>,
    /// Whether the CPU touched this frame since it was mapped. Used to
    /// identify THP-bloat subpages that were allocated by a huge-page
    /// promotion but never accessed.
    pub touched: bool,
}

impl FrameMeta {
    const FREE: FrameMeta = FrameMeta { owner: None, touched: false };
}

/// A dense allocator over a fixed number of physical frames, with
/// slab-lazy metadata.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    capacity: usize,
    /// Lazily materialised metadata slabs of [`SLAB_FRAMES`] frames each.
    slabs: Vec<Option<Box<[FrameMeta]>>>,
    /// LIFO recycle list of freed frames, preferred over fresh ones.
    free: Vec<FrameId>,
    /// Next never-allocated frame; all frames `>= next_fresh` outside
    /// `free` are virgin and implicitly [`FrameMeta::FREE`].
    next_fresh: FrameId,
}

impl FrameAllocator {
    /// Build an allocator managing `capacity_bytes` of physical memory.
    /// O(capacity / SLAB_FRAMES), not O(capacity).
    pub fn new(capacity_bytes: u64) -> Self {
        let nr = (capacity_bytes / PAGE_SIZE) as usize;
        Self {
            capacity: nr,
            slabs: (0..nr.div_ceil(SLAB_FRAMES)).map(|_| None).collect(),
            free: Vec::new(),
            next_fresh: 0,
        }
    }

    /// Total number of frames.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently free frames.
    #[inline]
    pub fn nr_free(&self) -> usize {
        self.capacity - self.next_fresh as usize + self.free.len()
    }

    /// Number of currently allocated frames.
    #[inline]
    pub fn nr_used(&self) -> usize {
        self.capacity() - self.nr_free()
    }

    /// Bytes of physical memory in use.
    #[inline]
    pub fn used_bytes(&self) -> u64 {
        self.nr_used() as u64 * PAGE_SIZE
    }

    /// Metadata slot for `id`, materialising its slab on first use.
    fn meta_mut(&mut self, id: FrameId) -> &mut FrameMeta {
        let slab = &mut self.slabs[id as usize / SLAB_FRAMES];
        let slab = slab
            .get_or_insert_with(|| vec![FrameMeta::FREE; SLAB_FRAMES].into_boxed_slice());
        &mut slab[id as usize % SLAB_FRAMES]
    }

    /// Metadata for `id` without materialising (virgin slabs read FREE).
    #[inline]
    fn meta(&self, id: FrameId) -> FrameMeta {
        match self.slabs.get(id as usize / SLAB_FRAMES) {
            Some(Some(slab)) => slab[id as usize % SLAB_FRAMES],
            _ => FrameMeta::FREE,
        }
    }

    /// Allocate one frame for `(pid, vaddr)`. Returns `None` when DRAM is
    /// exhausted — the caller is expected to reclaim and retry. Recycled
    /// frames are reused LIFO before fresh ones are broken in ascending
    /// order.
    #[inline]
    pub fn alloc(&mut self, pid: Pid, vaddr: u64) -> Option<FrameId> {
        let id = match self.free.pop() {
            Some(id) => id,
            None if (self.next_fresh as usize) < self.capacity => {
                let id = self.next_fresh;
                self.next_fresh += 1;
                id
            }
            None => return None,
        };
        *self.meta_mut(id) = FrameMeta { owner: Some((pid, vaddr)), touched: false };
        Some(id)
    }

    /// Release a frame back to the free pool.
    ///
    /// # Panics
    /// Panics (in debug builds) if the frame is already free — that would
    /// be a double-free bug in the substrate.
    #[inline]
    pub fn free(&mut self, id: FrameId) {
        debug_assert!(self.meta(id).owner.is_some(), "double free of frame {id}");
        *self.meta_mut(id) = FrameMeta::FREE;
        self.free.push(id);
    }

    /// The rmap lookup: owner of a frame, if mapped.
    #[inline]
    pub fn owner(&self, id: FrameId) -> Option<(Pid, u64)> {
        self.meta(id).owner
    }

    /// Whether the frame has been touched since it was mapped.
    #[inline]
    pub fn touched(&self, id: FrameId) -> bool {
        self.meta(id).touched
    }

    /// Record a CPU touch of the frame.
    #[inline]
    pub fn mark_touched(&mut self, id: FrameId) {
        self.meta_mut(id).touched = true;
    }

    /// Iterate over `(frame, meta)` of all frames; the physical-address
    /// monitoring primitive walks this. Virgin slabs yield FREE metadata.
    pub fn iter(&self) -> impl Iterator<Item = (FrameId, FrameMeta)> + '_ {
        (0..self.capacity as FrameId).map(|id| (id, self.meta(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut fa = FrameAllocator::new(16 * PAGE_SIZE);
        assert_eq!(fa.capacity(), 16);
        assert_eq!(fa.nr_free(), 16);
        let f = fa.alloc(1, 0x1000).unwrap();
        assert_eq!(fa.nr_used(), 1);
        assert_eq!(fa.owner(f), Some((1, 0x1000)));
        assert!(!fa.touched(f));
        fa.mark_touched(f);
        assert!(fa.touched(f));
        fa.free(f);
        assert_eq!(fa.nr_free(), 16);
        assert_eq!(fa.owner(f), None);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut fa = FrameAllocator::new(2 * PAGE_SIZE);
        assert!(fa.alloc(1, 0).is_some());
        assert!(fa.alloc(1, PAGE_SIZE).is_some());
        assert!(fa.alloc(1, 2 * PAGE_SIZE).is_none());
    }

    #[test]
    fn fresh_frames_are_handed_out_in_order() {
        let mut fa = FrameAllocator::new(4 * PAGE_SIZE);
        let ids: Vec<FrameId> = (0..4).map(|i| fa.alloc(1, i * PAGE_SIZE).unwrap()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "fresh allocation order is dense ascending");
    }

    #[test]
    fn freed_frame_is_reused_lifo() {
        let mut fa = FrameAllocator::new(4 * PAGE_SIZE);
        let a = fa.alloc(1, 0).unwrap();
        let _b = fa.alloc(1, PAGE_SIZE).unwrap();
        fa.free(a);
        let c = fa.alloc(2, 0x9000).unwrap();
        assert_eq!(c, a, "LIFO reuse of the freshest frame");
        assert_eq!(fa.owner(c), Some((2, 0x9000)));
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn double_free_panics() {
        let mut fa = FrameAllocator::new(PAGE_SIZE);
        let f = fa.alloc(1, 0).unwrap();
        fa.free(f);
        fa.free(f);
    }

    #[test]
    fn touched_resets_on_remap() {
        let mut fa = FrameAllocator::new(PAGE_SIZE);
        let f = fa.alloc(1, 0).unwrap();
        fa.mark_touched(f);
        fa.free(f);
        let f2 = fa.alloc(1, 0x2000).unwrap();
        assert_eq!(f, f2);
        assert!(!fa.touched(f2), "touch state must not leak across owners");
    }

    #[test]
    fn construction_is_slab_lazy() {
        // 1 GiB of frames: only slab pointers, no metadata yet.
        let fa = FrameAllocator::new(1 << 30);
        assert!(fa.slabs.iter().all(|s| s.is_none()));
        assert_eq!(fa.nr_free(), fa.capacity());
        // Reads of virgin frames see FREE metadata without materialising.
        assert_eq!(fa.owner(123_456), None);
        assert!(!fa.touched(123_456));
    }

    #[test]
    fn iter_covers_virgin_and_used_frames() {
        let mut fa = FrameAllocator::new(SLAB_FRAMES as u64 * 2 * PAGE_SIZE);
        let f = fa.alloc(7, 0x4000).unwrap();
        let mapped: Vec<FrameId> =
            fa.iter().filter(|(_, m)| m.owner.is_some()).map(|(id, _)| id).collect();
        assert_eq!(mapped, vec![f]);
        assert_eq!(fa.iter().count(), fa.capacity());
    }
}
