//! Virtual time.
//!
//! The entire reproduction runs under a discrete-event virtual clock in
//! nanoseconds. Workloads, the monitor's sampling/aggregation intervals,
//! scheme `age` thresholds and the tuner's time budget all use this clock,
//! so experiments are deterministic and much faster than wall time.


/// Nanoseconds of virtual time.
pub type Ns = u64;

/// One microsecond in [`Ns`].
pub const USEC: Ns = 1_000;
/// One millisecond in [`Ns`].
pub const MSEC: Ns = 1_000_000;
/// One second in [`Ns`].
pub const SEC: Ns = 1_000_000_000;
/// One minute in [`Ns`].
pub const MINUTE: Ns = 60 * SEC;

/// Convert milliseconds to [`Ns`].
#[inline]
pub const fn ms(v: u64) -> Ns {
    v * MSEC
}

/// Convert seconds to [`Ns`].
#[inline]
pub const fn sec(v: u64) -> Ns {
    v * SEC
}

/// A monotonically advancing virtual clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Clock {
    now: Ns,
}

impl Clock {
    /// A clock starting at time zero.
    pub const fn new() -> Self {
        Self { now: 0 }
    }

    /// Current virtual time.
    #[inline]
    pub const fn now(&self) -> Ns {
        self.now
    }

    /// Advance the clock by `delta` nanoseconds.
    #[inline]
    pub fn advance(&mut self, delta: Ns) {
        self.now += delta;
    }

    /// Nanoseconds elapsed since `since` (saturating).
    #[inline]
    pub fn since(&self, since: Ns) -> Ns {
        self.now.saturating_sub(since)
    }
}

/// Pretty-print a nanosecond quantity using the largest sensible unit,
/// as the schemes DSL and reports do (`5s`, `100ms`, `2m`, ...).
pub fn format_ns(ns: Ns) -> String {
    if ns >= MINUTE && ns.is_multiple_of(MINUTE) {
        format!("{}m", ns / MINUTE)
    } else if ns >= SEC && ns.is_multiple_of(SEC) {
        format!("{}s", ns / SEC)
    } else if ns >= MSEC && ns.is_multiple_of(MSEC) {
        format!("{}ms", ns / MSEC)
    } else if ns >= USEC && ns.is_multiple_of(USEC) {
        format!("{}us", ns / USEC)
    } else {
        format!("{}ns", ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0);
        c.advance(ms(5));
        assert_eq!(c.now(), 5 * MSEC);
        c.advance(sec(1));
        assert_eq!(c.since(ms(5)), SEC);
        assert_eq!(c.since(sec(100)), 0, "since saturates");
    }

    #[test]
    fn unit_constants_consistent() {
        assert_eq!(MSEC, 1000 * USEC);
        assert_eq!(SEC, 1000 * MSEC);
        assert_eq!(MINUTE, 60 * SEC);
    }

    #[test]
    fn formatting_picks_largest_unit() {
        assert_eq!(format_ns(2 * MINUTE), "2m");
        assert_eq!(format_ns(5 * SEC), "5s");
        assert_eq!(format_ns(100 * MSEC), "100ms");
        assert_eq!(format_ns(7 * USEC), "7us");
        assert_eq!(format_ns(123), "123ns");
        assert_eq!(format_ns(1_500_000_000), "1500ms");
    }
}


daos_util::json_struct!(Clock { now });
