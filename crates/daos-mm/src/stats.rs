//! Per-process and system-wide accounting.


use crate::clock::Ns;

/// Counters accumulated for one process over its lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProcStats {
    /// Anonymous minor faults (first touch of a page).
    pub minor_faults: u64,
    /// Major faults (page had to be read back from swap).
    pub major_faults: u64,
    /// Pages written to swap on behalf of this process.
    pub swapouts: u64,
    /// Pages read back from swap.
    pub swapins: u64,
    /// Pure compute time charged by the workload, ns.
    pub compute_ns: Ns,
    /// Memory-access time (DRAM latency + TLB walks), ns.
    pub access_ns: Ns,
    /// Stall time in fault handling / direct reclaim / THP allocation, ns.
    pub stall_ns: Ns,
    /// Slowdown attributed to monitoring-thread interference, ns.
    pub monitor_interference_ns: Ns,
    /// Highest resident-set size observed, bytes.
    pub peak_rss_bytes: u64,
    /// Integral of RSS over virtual time, byte·ns — used for average RSS,
    /// which is the memory-footprint metric in the paper's score function.
    pub rss_time_integral: u128,
    /// Huge-page promotions applied to this process's chunks.
    pub thp_promotions: u64,
    /// Huge-page demotions (splits).
    pub thp_demotions: u64,
}

impl ProcStats {
    /// Total virtual runtime so far (the paper's performance metric).
    pub fn runtime_ns(&self) -> Ns {
        self.compute_ns + self.access_ns + self.stall_ns + self.monitor_interference_ns
    }

    /// Average RSS over `elapsed` nanoseconds of virtual time.
    pub fn avg_rss_bytes(&self, elapsed: Ns) -> u64 {
        if elapsed == 0 {
            0
        } else {
            (self.rss_time_integral / elapsed as u128) as u64
        }
    }
}

/// Kernel-side (not charged to any process) accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// CPU time spent in the access monitor (sampling + aggregation), ns.
    pub monitor_ns: Ns,
    /// CPU time spent applying schemes (walking regions, pageout, THP), ns.
    pub schemes_ns: Ns,
    /// CPU time in background/kswapd-style reclaim, ns.
    pub reclaim_ns: Ns,
    /// Asynchronous swap-device write time (not charged to any process).
    pub swap_write_ns: Ns,
    /// Pages reclaimed by memory pressure (not DAMOS).
    pub pressure_reclaims: u64,
    /// Pages paged out by DAMOS PAGEOUT.
    pub damos_pageouts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_sums_components() {
        let s = ProcStats {
            compute_ns: 100,
            access_ns: 20,
            stall_ns: 30,
            monitor_interference_ns: 5,
            ..Default::default()
        };
        assert_eq!(s.runtime_ns(), 155);
    }

    #[test]
    fn avg_rss_integral() {
        let mut s = ProcStats::default();
        // 100 bytes resident for 10 ns, then 300 bytes for 10 ns.
        s.rss_time_integral += 100u128 * 10;
        s.rss_time_integral += 300u128 * 10;
        assert_eq!(s.avg_rss_bytes(20), 200);
        assert_eq!(s.avg_rss_bytes(0), 0);
    }
}


daos_util::json_struct!(ProcStats {
    minor_faults, major_faults, swapouts, swapins, compute_ns, access_ns,
    stall_ns, monitor_interference_ns, peak_rss_bytes, rss_time_integral,
    thp_promotions, thp_demotions,
});
daos_util::json_struct!(KernelStats {
    monitor_ns, schemes_ns, reclaim_ns, swap_write_ns, pressure_reclaims,
    damos_pageouts,
});
