//! Failure injection and edge cases: swap exhaustion, OOM, multi-process
//! isolation, reclaim under pressure, and THP boundary conditions.

use daos_mm::access::AccessBatch;
use daos_mm::addr::{AddrRange, HUGE_PAGE_SIZE, PAGE_SIZE};
use daos_mm::error::MmError;
use daos_mm::machine::MachineProfile;
use daos_mm::swap::SwapConfig;
use daos_mm::system::MemorySystem;
use daos_mm::vma::ThpMode;

fn sys_with(dram: u64, swap: SwapConfig) -> MemorySystem {
    let mut m = MachineProfile::test_tiny();
    m.dram_bytes = dram;
    MemorySystem::new(m, swap, 99)
}

fn fill(sys: &mut MemorySystem, pid: u32, bytes: u64) -> AddrRange {
    let range = sys.mmap(pid, bytes, ThpMode::Never).unwrap();
    sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
    range
}

fn drop_refs(sys: &mut MemorySystem, pid: u32, range: AddrRange) {
    for p in range.pages() {
        sys.check_accessed_clear(pid, p);
    }
}

#[test]
fn swap_full_stops_pageout_but_leaves_consistent_state() {
    // Swap holds only 64 pages (uncompressed file swap).
    let mut sys = sys_with(16 << 20, SwapConfig::File { capacity_bytes: 64 * PAGE_SIZE });
    let pid = sys.spawn();
    let range = fill(&mut sys, pid, 1 << 20); // 256 pages
    drop_refs(&mut sys, pid, range);
    let (bytes, _) = sys.pageout(pid, range).unwrap();
    assert_eq!(bytes, 64 * PAGE_SIZE, "stops exactly at device capacity");
    assert_eq!(sys.nr_swapped_in(pid, range), 64);
    assert_eq!(sys.rss_bytes(pid), (256 - 64) * PAGE_SIZE);
    // The rest of the system still works: touch everything back in.
    let out = sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
    assert_eq!(out.major_faults, 64);
    assert_eq!(sys.rss_bytes(pid), 1 << 20);
    assert_eq!(sys.swap().used_bytes(), 0, "slots freed after swap-in");
}

#[test]
fn oom_without_swap_reports_not_panics() {
    let mut sys = sys_with(1 << 20, SwapConfig::None);
    let pid = sys.spawn();
    let range = sys.mmap(pid, 4 << 20, ThpMode::Never).unwrap();
    let err = sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap_err();
    assert_eq!(err, MmError::OutOfMemory);
    // The pages mapped before exhaustion are still accounted.
    assert_eq!(sys.rss_bytes(pid), sys.used_dram_bytes());
    assert_eq!(sys.rss_bytes(pid), 1 << 20);
}

#[test]
fn pressure_reclaim_respects_second_chance() {
    // 2 MiB DRAM; A (hot, touched every round) + B (cold).
    let mut sys = sys_with(2 << 20, SwapConfig::paper_zram());
    let pid = sys.spawn();
    let a = fill(&mut sys, pid, 768 << 10);
    let b = fill(&mut sys, pid, 768 << 10);
    drop_refs(&mut sys, pid, b);
    // Keep A referenced, then allocate C to force eviction.
    sys.apply_access(pid, &AccessBatch::all(a, 1.0)).unwrap();
    let c = sys.mmap(pid, 768 << 10, ThpMode::Never).unwrap();
    sys.apply_access(pid, &AccessBatch::all(c, 1.0)).unwrap();
    let evicted_a = sys.nr_swapped_in(pid, a);
    let evicted_b = sys.nr_swapped_in(pid, b);
    assert!(evicted_b > 0);
    assert!(
        evicted_b >= evicted_a,
        "cold area must absorb at least as many evictions: a={evicted_a} b={evicted_b}"
    );
    assert!(sys.used_dram_bytes() <= 2 << 20);
}

#[test]
fn multi_process_isolation() {
    let mut sys = sys_with(32 << 20, SwapConfig::paper_zram());
    let p1 = sys.spawn();
    let p2 = sys.spawn();
    let r1 = fill(&mut sys, p1, 4 << 20);
    let r2 = fill(&mut sys, p2, 4 << 20);
    assert_eq!(sys.rss_bytes(p1), 4 << 20);
    assert_eq!(sys.rss_bytes(p2), 4 << 20);

    // Paging out p1 does not touch p2.
    drop_refs(&mut sys, p1, r1);
    sys.pageout(p1, r1).unwrap();
    assert_eq!(sys.rss_bytes(p1), 0);
    assert_eq!(sys.rss_bytes(p2), 4 << 20);

    // Their address spaces are independent: same vaddr, different pages.
    assert_eq!(r1.start, r2.start, "bump allocator gives both the same base");
    assert_eq!(sys.peek_accessed(p2, r2.start), Some(true));
    assert_eq!(
        sys.peek_accessed(p1, r1.start),
        Some(false),
        "p1's page is swapped (mapped but not accessed)"
    );

    // Exit of p1 releases only p1's resources.
    sys.exit(p1).unwrap();
    assert_eq!(sys.rss_bytes(p2), 4 << 20);
    assert_eq!(sys.used_dram_bytes(), 4 << 20);
    assert_eq!(sys.swap().used_bytes(), 0);
    assert_eq!(sys.live_pids(), vec![p2]);
}

#[test]
fn khugepaged_min_resident_threshold() {
    let mut sys = sys_with(64 << 20, SwapConfig::paper_zram());
    let pid = sys.spawn();
    let range = sys
        .mmap_at(pid, 8 * HUGE_PAGE_SIZE, 2 * HUGE_PAGE_SIZE, ThpMode::Always)
        .unwrap();
    // Chunk 0: 4 resident pages; chunk 1: none.
    let head = AddrRange::new(range.start, range.start + 4 * PAGE_SIZE);
    sys.apply_access(pid, &AccessBatch::all(head, 1.0)).unwrap();

    let (promoted, _) = sys.khugepaged_scan(pid, 5).unwrap();
    assert_eq!(promoted, 0, "below the residency threshold");
    let (promoted, _) = sys.khugepaged_scan(pid, 4).unwrap();
    assert_eq!(promoted, 1, "only the populated chunk");
    assert_eq!(sys.huge_bytes(pid), HUGE_PAGE_SIZE);
    assert_eq!(sys.rss_bytes(pid), HUGE_PAGE_SIZE, "bloat confined to chunk 0");
}

#[test]
fn promotion_fails_cleanly_when_dram_exhausted() {
    // DRAM fits 1.5 chunks; promoting both must promote one and skip one.
    let mut sys = sys_with(3 * HUGE_PAGE_SIZE / 2, SwapConfig::None);
    let pid = sys.spawn();
    let range = sys
        .mmap_at(pid, 8 * HUGE_PAGE_SIZE, 2 * HUGE_PAGE_SIZE, ThpMode::Always)
        .unwrap();
    for chunk in [range.start, range.start + HUGE_PAGE_SIZE] {
        let head = AddrRange::new(chunk, chunk + PAGE_SIZE);
        sys.apply_access(pid, &AccessBatch::all(head, 1.0)).unwrap();
    }
    let (promoted, _) = sys.promote_huge(pid, range).unwrap();
    assert_eq!(promoted, 1, "second chunk abandoned for lack of frames");
    // No leaked frames: used = 1 full chunk + 1 head page.
    assert_eq!(sys.used_dram_bytes(), HUGE_PAGE_SIZE + PAGE_SIZE);
    assert_eq!(sys.rss_bytes(pid), sys.used_dram_bytes());
}

#[test]
fn willneed_stops_at_dram_capacity() {
    let mut sys = sys_with(1 << 20, SwapConfig::paper_zram());
    let pid = sys.spawn();
    let range = sys.mmap(pid, 2 << 20, ThpMode::Never).unwrap();
    sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap(); // thrashes in
    drop_refs(&mut sys, pid, range);
    sys.pageout(pid, range).unwrap();
    let swapped_before = sys.nr_swapped_in(pid, range);
    assert!(swapped_before > 0);
    let (bytes, _) = sys.willneed(pid, range).unwrap();
    assert!(bytes <= 1 << 20, "prefetch cannot exceed DRAM");
    assert!(sys.used_dram_bytes() <= 1 << 20);
}

#[test]
fn paddr_pageout_respects_reference_bits() {
    let mut sys = sys_with(16 << 20, SwapConfig::paper_zram());
    let pid = sys.spawn();
    let range = fill(&mut sys, pid, 512 << 10);
    // All pages referenced: a physical pass only clears bits.
    let (bytes, _) = sys.pageout_paddr(sys.phys_space());
    assert_eq!(bytes, 0, "first pass is the reference check");
    let (bytes, _) = sys.pageout_paddr(sys.phys_space());
    assert_eq!(bytes, 512 << 10, "second pass evicts");
    assert_eq!(sys.rss_bytes(pid), 0);
    let _ = range;
}

#[test]
fn zram_accounting_under_mixed_traffic() {
    let mut sys = sys_with(
        16 << 20,
        SwapConfig::Zram { capacity_bytes: 1 << 20, compression_ratio: 4.0 },
    );
    let pid = sys.spawn();
    let range = fill(&mut sys, pid, 2 << 20);
    drop_refs(&mut sys, pid, range);
    // 512 pages out at 1 KiB compressed each = 512 KiB of the 1 MiB device.
    sys.pageout(pid, range).unwrap();
    assert_eq!(sys.swap().used_bytes(), 512 << 10);
    // Half back in; device shrinks accordingly.
    let half = AddrRange::new(range.start, range.start + (1 << 20));
    sys.apply_access(pid, &AccessBatch::all(half, 1.0)).unwrap();
    assert_eq!(sys.swap().used_bytes(), 256 << 10);
    assert_eq!(sys.nr_swapped_in(pid, range), 256);
}

#[test]
fn stats_survive_heavy_churn() {
    let mut sys = sys_with(8 << 20, SwapConfig::paper_zram());
    let pid = sys.spawn();
    let range = fill(&mut sys, pid, 4 << 20);
    for _ in 0..5 {
        drop_refs(&mut sys, pid, range);
        sys.pageout(pid, range).unwrap();
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        sys.advance(1_000_000);
    }
    let st = sys.proc_stats(pid).unwrap();
    assert_eq!(st.swapouts, 5 * 1024);
    assert_eq!(st.swapins, 5 * 1024);
    assert_eq!(st.major_faults, 5 * 1024);
    assert_eq!(st.minor_faults, 1024);
    assert_eq!(st.peak_rss_bytes, 4 << 20);
    assert!(st.stall_ns > 0);
    assert_eq!(sys.rss_bytes(pid), 4 << 20);
}
