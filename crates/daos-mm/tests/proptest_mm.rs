//! Property-based invariants of the memory substrate.
//!
//! The key conservation law: every page of a mapping is always in exactly
//! one of {not-present, resident, swapped}, RSS equals resident pages,
//! and DRAM usage equals the sum of all processes' resident pages (plus
//! THP filler pages, which are resident too).

use daos_mm::access::AccessBatch;
use daos_mm::addr::{AddrRange, HUGE_PAGE_SIZE, PAGE_SIZE};
use daos_mm::machine::MachineProfile;
use daos_mm::swap::SwapConfig;
use daos_mm::system::MemorySystem;
use daos_mm::vma::ThpMode;
use daos_util::prop::{btree_set_of, vec_of, Just, Strategy, StrategyExt};
use daos_util::{one_of, prop_assert_eq, proptest};

#[derive(Debug, Clone)]
enum Op {
    TouchAll,
    TouchRandom(u32),
    TouchStride(u32),
    PageoutPrefix(u8),
    Promote,
    Demote,
    Cold,
    Willneed,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    one_of![
        Just(Op::TouchAll),
        (1u32..200).prop_map(Op::TouchRandom),
        (1u32..16).prop_map(Op::TouchStride),
        (1u8..=100).prop_map(Op::PageoutPrefix),
        Just(Op::Promote),
        Just(Op::Demote),
        Just(Op::Cold),
        Just(Op::Willneed),
    ]
}

fn check_conservation(sys: &MemorySystem, pid: u32, range: AddrRange) {
    let total = range.nr_pages();
    let resident = sys.nr_resident_in(pid, range);
    let swapped = sys.nr_swapped_in(pid, range);
    assert!(resident + swapped <= total, "over-accounted pages");
    assert_eq!(
        sys.rss_bytes(pid),
        resident * PAGE_SIZE,
        "RSS must equal resident pages"
    );
    assert_eq!(
        sys.used_dram_bytes(),
        resident * PAGE_SIZE,
        "single-process DRAM usage equals its resident set"
    );
}

proptest! {
    cases = 64;

    fn page_state_conservation(ops in vec_of(op_strategy(), 1..40), seed in 0u64..1000) {
        let mut machine = MachineProfile::test_tiny();
        machine.dram_bytes = 32 << 20;
        let mut sys = MemorySystem::new(machine, SwapConfig::paper_zram(), seed);
        let pid = sys.spawn();
        // One VMA aligned to a huge boundary so Promote has chunks to work on.
        let range = sys
            .mmap_at(pid, 8 * HUGE_PAGE_SIZE, 2 * HUGE_PAGE_SIZE, ThpMode::Always)
            .unwrap();

        for op in ops {
            match op {
                Op::TouchAll => {
                    sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
                }
                Op::TouchRandom(n) => {
                    sys.apply_access(pid, &AccessBatch::random(range, n, 1.0)).unwrap();
                }
                Op::TouchStride(s) => {
                    sys.apply_access(pid, &AccessBatch::stride(range, s, 1.0)).unwrap();
                }
                Op::PageoutPrefix(pct) => {
                    let len = range.len() * pct as u64 / 100;
                    let sub = AddrRange::new(range.start, range.start + len).page_aligned();
                    if !sub.is_empty() {
                        sys.pageout(pid, sub).unwrap();
                    }
                }
                Op::Promote => {
                    sys.promote_huge(pid, range).unwrap();
                }
                Op::Demote => {
                    sys.demote_huge(pid, range).unwrap();
                }
                Op::Cold => {
                    sys.mark_cold(pid, range).unwrap();
                }
                Op::Willneed => {
                    sys.willneed(pid, range).unwrap();
                }
            }
            check_conservation(&sys, pid, range);
        }

        // Teardown releases everything, including swap slots.
        sys.exit(pid).unwrap();
        prop_assert_eq!(sys.used_dram_bytes(), 0);
        prop_assert_eq!(sys.swap().used_bytes(), 0);
    }

    fn pageout_then_touch_restores_exact_pages(
        prefix_pages in 1u64..512,
        seed in 0u64..100,
    ) {
        let mut machine = MachineProfile::test_tiny();
        machine.dram_bytes = 32 << 20;
        let mut sys = MemorySystem::new(machine, SwapConfig::paper_zram(), seed);
        let pid = sys.spawn();
        let range = sys.mmap(pid, 2 << 20, ThpMode::Never).unwrap(); // 512 pages
        sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();

        let n = prefix_pages.min(range.nr_pages());
        let sub = AddrRange::new(range.start, range.start + n * PAGE_SIZE);
        let (cleared, _) = sys.pageout(pid, sub).unwrap(); // reference pass
        prop_assert_eq!(cleared, 0);
        let (bytes, _) = sys.pageout(pid, sub).unwrap(); // eviction pass
        prop_assert_eq!(bytes, n * PAGE_SIZE);
        prop_assert_eq!(sys.nr_swapped_in(pid, range), n);

        let out = sys.apply_access(pid, &AccessBatch::all(range, 1.0)).unwrap();
        prop_assert_eq!(out.major_faults, n);
        prop_assert_eq!(sys.nr_swapped_in(pid, range), 0);
        prop_assert_eq!(sys.rss_bytes(pid), range.len());
    }

    fn accessed_bits_reflect_touches(pages in btree_set_of(0u64..256, 1..64)) {
        let mut sys = MemorySystem::new(
            MachineProfile::test_tiny(),
            SwapConfig::paper_zram(),
            7,
        );
        let pid = sys.spawn();
        let range = sys.mmap(pid, 1 << 20, ThpMode::Never).unwrap();
        for &p in &pages {
            let addr = range.start + p * PAGE_SIZE;
            sys.apply_access(pid, &AccessBatch::all(AddrRange::new(addr, addr + PAGE_SIZE), 1.0)).unwrap();
        }
        for p in 0..256u64 {
            let addr = range.start + p * PAGE_SIZE;
            let expected = pages.contains(&p);
            prop_assert_eq!(sys.peek_accessed(pid, addr), Some(expected));
        }
        // check+clear agrees, then reads false.
        for &p in &pages {
            let addr = range.start + p * PAGE_SIZE;
            prop_assert_eq!(sys.check_accessed_clear(pid, addr), Some(true));
            prop_assert_eq!(sys.peek_accessed(pid, addr), Some(false));
        }
    }
}
