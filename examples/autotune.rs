//! Auto-tuning walkthrough: the manually-chosen prcl threshold thrashes a
//! streaming workload; the Auto-tuning Runtime finds a safe, still
//! memory-saving threshold from 10 samples (§3.5 / Fig. 8).
//!
//! ```sh
//! cargo run --release --example autotune [workload]
//! ```

use daos_repro::prelude::*;
use daos_mm::clock::sec;

fn main() {
    let name =
        std::env::args().nth(1).unwrap_or_else(|| "splash2x/ocean_ncp".to_string());
    let spec = by_path(&name).expect("suite workload");
    let machine = MachineProfile::i3_metal();
    println!("auto-tuning the prcl scheme for {} on {}\n", spec.path_name(), machine.name);

    let baseline = run(&machine, &RunConfig::baseline(), &spec, 42).unwrap();
    let manual = run(&machine, &RunConfig::prcl(), &spec, 42).unwrap();
    let nm = Normalized::of(&baseline, &manual);
    println!(
        "manual scheme (min_age 5s):  {:>5.1}% memory saving, {:>6.2}% slowdown, score {:.1}",
        nm.memory_saving_pct(),
        nm.slowdown_pct(),
        score_vs_baseline(&baseline, &manual)
    );

    // The tuner: 10 samples within the time budget, Listing-2 score.
    let mut score_fn = DefaultScore::default();
    let cfg = TunerConfig {
        time_limit: sec(100),
        unit_work_time: sec(10),
        range: (0.0, 60.0),
        seed: 42,
    };
    println!("\ntuning (10 samples = 6 global + 4 localized):");
    let result = tune(&cfg, |min_age| {
        let r = run(&machine, &RunConfig::prcl_with_min_age((min_age * 1e9) as u64), &spec, 42)
            .unwrap();
        let s = score_fn.score(&ScoreInputs {
            runtime: r.runtime_ns as f64,
            orig_runtime: baseline.runtime_ns as f64,
            rss: r.avg_rss as f64,
            orig_rss: baseline.avg_rss as f64,
        });
        println!("  sample min_age {min_age:>5.1}s -> score {s:>7.2}");
        s
    });
    println!(
        "\nfitted degree-{} polynomial; best threshold: min_age {:.1}s",
        result.curve.as_ref().map(|c| c.degree()).unwrap_or(0),
        result.best_x
    );

    let auto = run(
        &machine,
        &RunConfig::prcl_with_min_age((result.best_x * 1e9) as u64),
        &spec,
        42,
    )
    .unwrap();
    let na = Normalized::of(&baseline, &auto);
    println!(
        "auto-tuned scheme:           {:>5.1}% memory saving, {:>6.2}% slowdown, score {:.1}",
        na.memory_saving_pct(),
        na.slowdown_pct(),
        score_vs_baseline(&baseline, &auto)
    );
    println!(
        "\npaper (Fig. 8): auto-tuning removes ~90% of the manual slowdown while \
         keeping ~70% of the memory saving"
    );
}
