//! Proactive reclamation in production style: reclaim the cold memory of
//! a mostly-idle service (the paper's §4.4 serverless scenario), and show
//! how the swap backend changes the true memory saving.
//!
//! ```sh
//! cargo run --release --example proactive_reclaim
//! ```

use daos_repro::prelude::*;
use daos_mm::clock::{sec, SEC};

/// Drive the fleet for `duration` seconds under a 30 s idle-pageout
/// scheme; returns (normalized memory usage, request slowdown).
fn drive(swap: SwapConfig) -> (f64, f64) {
    let machine = MachineProfile::i3_metal();
    let mut sys = MemorySystem::new(machine, swap, 7);
    let mut fleet = ServerlessFleet::new(FleetConfig::default(), 7);
    fleet.setup(&mut sys).unwrap();
    let full = fleet.total_rss(&sys) as f64;

    let scheme = parse_scheme_line("min max min min 30s max pageout").unwrap();
    let mut engine = SchemesEngine::new(SchemeTarget::Physical, vec![scheme]);
    let mut monitor = MonitorCtx::new(MonitorAttrs::paper_defaults(), PaddrPrimitives, &sys, 0, 9);
    let mut sink = Vec::new();

    let mut usage = 0.0;
    let mut n = 0u64;
    let mut work = 0u64;
    while sys.now() < 180 * SEC {
        let cost = fleet.epoch(&mut sys).unwrap();
        work += cost;
        sys.advance(cost);
        let now = sys.now();
        monitor.step(&mut sys, now, &mut sink);
        let interference = sys.charge_monitor(monitor.take_work_ns());
        sys.advance(interference);
        for agg in sink.drain(..) {
            let pass = engine.on_aggregation(&mut sys, &agg);
            let i2 = sys.charge_schemes(pass.work_ns);
            sys.advance(i2);
        }
        if sys.now() >= sec(90) {
            usage += fleet.total_memory_usage(&sys) as f64 / full;
            n += 1;
        }
    }
    (usage / n as f64, work as f64)
}

fn main() {
    println!("Serverless fleet: 8 workers x 24 MiB heap, ~90% of it cold.");
    println!("Scheme: 'min max min min 30s max pageout' on the physical address space.\n");

    let (none, base_work) = drive(SwapConfig::None);
    let (file, file_work) = drive(SwapConfig::File { capacity_bytes: 1 << 30 });
    let (zram, zram_work) =
        drive(SwapConfig::Zram { capacity_bytes: 256 << 20, compression_ratio: 9.0 });

    println!("{:<12} {:>18} {:>12}", "swap", "normalized memory", "slowdown");
    println!("{:-<44}", "");
    for (name, usage, work) in [
        ("no swap", none, base_work),
        ("file swap", file, file_work),
        ("zram", zram, zram_work),
    ] {
        println!(
            "{:<12} {:>17.0}% {:>11.2}%",
            name,
            usage * 100.0,
            (work / base_work - 1.0) * 100.0
        );
    }
    println!("\npaper (Fig. 9): zram keeps ~20% (80% reduction), file swap ~10% (90%).");
    println!("zram saves less because compressed pages still live in DRAM.");
}
