//! Access-pattern profiler: record any suite workload with the Data
//! Access Monitor and render its Fig. 6-style heatmap.
//!
//! ```sh
//! cargo run --release --example heatmap_profiler -- splash2x/fft
//! cargo run --release --example heatmap_profiler -- parsec3/dedup
//! ```

use daos_repro::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "splash2x/fft".to_string());
    let Some(spec) = by_path(&name) else {
        eprintln!("unknown workload '{name}'; available:");
        for s in paper_suite() {
            eprintln!("  {}", s.path_name());
        }
        std::process::exit(1);
    };

    let machine = MachineProfile::i3_metal();
    println!(
        "profiling {} ({} MiB) with the Data Access Monitor (rec config)...\n",
        spec.path_name(),
        spec.footprint >> 20
    );
    let result = run(&machine, &RunConfig::rec(), &spec, 42).expect("rec run");
    let record = result.record.as_ref().unwrap();

    // Skip the address-space gaps, as the paper's Fig. 6 does.
    let span = biggest_active_span(record).expect("active span");
    let heatmap = Heatmap::from_record(record, span, 76, 20).expect("heatmap");
    print!("{}", heatmap.render_ascii());
    println!(
        "x: 0..{:.0}s   y: {}..{} MiB   intensity: access frequency",
        result.runtime_ns as f64 / 1e9,
        span.start >> 20,
        span.end >> 20
    );
    println!(
        "\n{} aggregation windows; monitoring used {:.2}% of one CPU and slowed the \
         workload {:.2}%",
        record.len(),
        result.monitor_cpu_share() * 100.0,
        100.0 * result.stats.monitor_interference_ns as f64 / result.runtime_ns as f64
    );
}
