//! THP memory bloat and the access-aware fix: compare Linux-style
//! aggressive THP against the paper's 2-line `ethp` scheme on a
//! non-contiguous grid workload (the splash2x/ocean_ncp analog).
//!
//! ```sh
//! cargo run --release --example thp_bloat
//! ```

use daos_repro::prelude::*;

fn main() {
    let machine = MachineProfile::i3_metal();
    let spec = by_path("splash2x/ocean_ncp").expect("suite workload");
    println!(
        "workload: {} — strided grid sweeps ({} MiB mapped, every 2nd page touched)\n",
        spec.path_name(),
        spec.footprint >> 20
    );

    let baseline = run(&machine, &RunConfig::baseline(), &spec, 42).unwrap();
    let thp = run(&machine, &RunConfig::thp(), &spec, 42).unwrap();
    let ethp = run(&machine, &RunConfig::ethp(), &spec, 42).unwrap();

    println!("{:<22} {:>10} {:>12} {:>12}", "config", "runtime", "avg RSS", "THP promos");
    println!("{:-<60}", "");
    for r in [&baseline, &thp, &ethp] {
        println!(
            "{:<22} {:>9.1}s {:>8} MiB {:>12}",
            r.config,
            r.runtime_ns as f64 / 1e9,
            r.avg_rss >> 20,
            r.stats.thp_promotions
        );
    }

    let nt = Normalized::of(&baseline, &thp);
    let ne = Normalized::of(&baseline, &ethp);
    let thp_gain = (nt.performance - 1.0) * 100.0;
    let ethp_gain = (ne.performance - 1.0) * 100.0;
    let thp_bloat = (1.0 / nt.memory_efficiency - 1.0) * 100.0;
    let ethp_bloat = (1.0 / ne.memory_efficiency - 1.0) * 100.0;
    println!("\nLinux THP:  +{thp_gain:.1}% performance, +{thp_bloat:.1}% memory (bloat)");
    println!("DAOS ethp:  +{ethp_gain:.1}% performance, +{ethp_bloat:.1}% memory");
    println!(
        "ethp preserves {:.0}% of the THP gain while removing {:.0}% of the bloat",
        100.0 * ethp_gain / thp_gain.max(1e-9),
        100.0 * (1.0 - ethp_bloat / thp_bloat.max(1e-9)),
    );
    println!("paper (Fig. 7, ocean_ncp): preserves 46% of the gain, removes 80% of the bloat");
    println!("\nthe whole optimisation is these 2 scheme lines (Listing 3):");
    for c in RunConfig::ethp().schemes {
        println!("  {}", c.scheme);
    }
}
