//! Quickstart: monitor a workload's access pattern, then manage its
//! memory with a one-line scheme — the end-to-end DAOS workflow of
//! Fig. 1, in ~40 lines of user code.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use daos_repro::prelude::*;

fn main() {
    // 1. A machine and a workload (an analog of parsec3/freqmine — a big
    //    FP-tree built up front, of which only ~7 % is ever used again).
    let machine = MachineProfile::i3_metal();
    let spec = by_path("parsec3/freqmine").expect("suite workload");
    println!("workload: {} ({} MiB footprint)", spec.path_name(), spec.footprint >> 20);

    // 2. Baseline: no DAOS. The whole footprint stays resident.
    let baseline = run(&machine, &RunConfig::baseline(), &spec, 42).unwrap();
    println!(
        "baseline: runtime {:.1}s, average RSS {} MiB",
        baseline.runtime_ns as f64 / 1e9,
        baseline.avg_rss >> 20
    );

    // 3. Monitoring only (the paper's `rec`): what does the access
    //    pattern look like? The Data Access Monitor watches the address
    //    space with bounded overhead and reports hot/cold regions.
    let rec = run(&machine, &RunConfig::rec(), &spec, 42).unwrap();
    let record = rec.record.as_ref().unwrap();
    let last = record.aggregations.last().unwrap();
    let hot_bytes: u64 = last
        .regions
        .iter()
        .filter(|r| last.freq_ratio(r) > 0.5)
        .map(|r| r.range.len())
        .sum();
    println!(
        "monitor:  {} regions; ~{} MiB look hot; monitoring cost {:.2}% of one CPU",
        last.regions.len(),
        hot_bytes >> 20,
        rec.monitor_cpu_share() * 100.0
    );

    // 4. Management: the paper's 1-line proactive reclamation scheme —
    //    "page out regions idle for at least 5 seconds".
    let scheme_text = "4K max min min 5s max pageout";
    let scheme = parse_scheme_line(scheme_text).unwrap();
    println!("scheme:   '{scheme_text}' -> {scheme:?}");

    let prcl = run(&machine, &RunConfig::prcl(), &spec, 42).unwrap();
    let n = Normalized::of(&baseline, &prcl);
    println!(
        "with scheme: average RSS {} MiB ({:.1}% saved) at {:.2}% slowdown",
        prcl.avg_rss >> 20,
        n.memory_saving_pct(),
        n.slowdown_pct()
    );
    println!(
        "paper (Fig. 7, same workload class): 91.3% memory saving at 0.9% slowdown"
    );
}
