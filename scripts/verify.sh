#!/bin/sh
# Tier-1 verification: hermetic offline build + full test suite, plus a
# guard that no Cargo.toml reintroduces a registry (non-path) dependency.
#
# The workspace must build from a clean clone with no network and an
# empty registry cache; every dependency is an in-tree path dependency
# (see README "Zero-dependency policy").
set -eu

cd "$(dirname "$0")/.."

echo "== guard: no registry dependencies in any Cargo.toml =="
# Inside [dependencies]/[dev-dependencies]/[build-dependencies] (or the
# workspace.dependencies table), every entry must be `X.workspace = true`
# or an inline table containing `path = ...`. Version strings and
# `version = ...` keys are what this guard rejects.
fail=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    bad=$(awk '
        /^\[/ {
            indeps = ($0 ~ /^\[(workspace\.)?(dependencies|dev-dependencies|build-dependencies)\]/)
            next
        }
        indeps && NF && $0 !~ /^[[:space:]]*#/ {
            if ($0 !~ /workspace[[:space:]]*=[[:space:]]*true/ && $0 !~ /path[[:space:]]*=/)
                print FILENAME ": " $0
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "registry dependency found:"
        echo "$bad"
        fail=1
    fi
done
[ "$fail" -eq 0 ] || { echo "FAIL: non-path dependencies present"; exit 1; }
echo "ok"

echo "== guard: no printing from library code =="
# Library crates report through daos-trace (events + metrics) or return
# values; only the daos-cli binary and the daos-bench bin/ report
# binaries may talk to stdout/stderr. Doc comments are exempt.
bad=$(grep -rn 'print!\|println!\|eprint!\|eprintln!' crates/*/src \
        --include='*.rs' \
        | grep -v '^crates/daos-cli/' \
        | grep -v '/src/bin/' \
        | grep -v '^[^:]*:[0-9]*:[[:space:]]*//' \
        || true)
if [ -n "$bad" ]; then
    echo "library code printing directly (use daos-trace or return values):"
    echo "$bad"
    echo "FAIL: stdout/stderr use outside daos-cli and bench binaries"
    exit 1
fi
echo "ok"

echo "== offline release build =="
cargo build --release --offline

echo "== offline test suite (workspace) =="
cargo test -q --offline --workspace

echo "== offline bench binaries compile =="
cargo bench --offline --no-run

echo "== telemetry: JSONL replay re-derives the Fig. 7 bound =="
cargo test -q --offline --test trace_replay

echo "verify: OK"
