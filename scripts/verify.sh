#!/bin/sh
# Tier-1 verification: hermetic offline build + full test suite, plus
# the in-tree static analysis (`daos-lint`) that machine-checks the
# workspace invariants: no registry (non-path) dependencies, no printing
# from library code, panic discipline, deterministic simulation crates,
# justified atomic orderings, no dead tracepoints, machine-parseable
# metric keys, and the semantic concurrency passes — lock-order cycles,
# blocking calls under live guards, and poison-funnel guard discipline.
#
# The workspace must build from a clean clone with no network and an
# empty registry cache; every dependency is an in-tree path dependency
# (see README "Zero-dependency policy").
set -eu

cd "$(dirname "$0")/.."

echo "== offline release build (must be warning-free) =="
# `cargo build` replays cached warnings for already-built crates, so
# grepping the build output catches warnings even on incremental runs.
build_log=$(cargo build --release --offline --workspace 2>&1) || {
    echo "$build_log"
    exit 1
}
if echo "$build_log" | grep -q "^warning"; then
    echo "$build_log" | grep -A 5 "^warning"
    echo "FAIL: release build emits warnings"
    exit 1
fi
echo "ok"

echo "== daos-lint: workspace invariants =="
# The token-level replacement for the old awk/grep guards: a
# comment/string-aware lexer, so doc examples and multiline macro calls
# can neither false-positive nor slip through. See DESIGN.md §11; the
# concurrency passes (semantic model + call graph) are DESIGN.md §16.
lint_out=$(cargo run -q -p daos-lint --release --offline -- --json) || {
    echo "$lint_out"
    echo "FAIL: daos-lint found workspace-invariant violations"
    echo "(run 'cargo run -p daos-lint --release' for the human-readable list)"
    exit 1
}
# "Clean" must mean the concurrency passes actually ran: the report's
# lint roster has to advertise them, or the gate is vacuous.
for pass in lock-order blocking-under-lock guard-discipline; do
    case "$lint_out" in
        *"\"$pass\""*) ;;
        *)
            echo "$lint_out"
            echo "FAIL: daos-lint --json lint roster lacks the $pass pass"
            exit 1
            ;;
    esac
done
echo "ok"

echo "== golden: fixed-seed trace reports are byte-stable =="
# Record a small fixed-seed trace and diff the offline reports against
# checked-in golden files. Any drift in the monitor, the trace schema,
# or the report renderers shows up here as a diff.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
target/release/daos trace parsec3/freqmine --config rec --epochs 200 \
    --seed 42 --ring 1048576 --out "$tmp/trace.jsonl" > /dev/null
target/release/daos report wss "$tmp/trace.jsonl" > "$tmp/wss.txt"
target/release/daos report summary "$tmp/trace.jsonl" > "$tmp/summary.txt"
diff -u tests/golden/trace_wss.txt "$tmp/wss.txt" || {
    echo "FAIL: report wss drifted from tests/golden/trace_wss.txt"
    exit 1
}
diff -u tests/golden/trace_summary.txt "$tmp/summary.txt" || {
    echo "FAIL: report summary drifted from tests/golden/trace_summary.txt"
    exit 1
}
echo "ok"

echo "== live observability endpoints answer during a real run =="
# Spawn a served run on an ephemeral port, scrape /healthz and /metrics
# with the std-only obs-get client (which also validates the exposition
# format), then kill the lingering server.
target/release/daos run parsec3/freqmine --config rec --epochs 200 --seed 42 \
    --serve 127.0.0.1:0 --linger > "$tmp/serve.log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^serving observability on \([0-9.:]*\)$/\1/p' "$tmp/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "FAIL: served run never announced its address"; kill "$serve_pid" 2>/dev/null; exit 1; }
health=$(target/release/obs-get "$addr" /healthz) || {
    echo "FAIL: /healthz unreachable on $addr"; kill "$serve_pid" 2>/dev/null; exit 1
}
[ "$health" = "ok" ] || { echo "FAIL: /healthz said '$health'"; kill "$serve_pid" 2>/dev/null; exit 1; }
target/release/obs-get "$addr" /metrics > "$tmp/metrics.txt" || {
    echo "FAIL: /metrics unreachable or invalid exposition"; kill "$serve_pid" 2>/dev/null; exit 1
}
[ -s "$tmp/metrics.txt" ] || { echo "FAIL: /metrics body empty"; kill "$serve_pid" 2>/dev/null; exit 1; }
kill "$serve_pid" 2>/dev/null
wait "$serve_pid" 2>/dev/null || true
echo "ok"

echo "== bench pipeline: well-formed artifact, hot paths within baseline =="
# A full (non-quick) run takes <1 s and its medians are stable enough to
# gate; --quick's 3x5 samples are not. The margin absorbs slow shared
# CI machines while still catching any real hot-path regression (the
# pre-rebuild scheme-apply path was ~9x over today's baseline).
DAOS_BENCH_OUT="$tmp/bench.json" target/release/pipeline > /dev/null
[ -s "$tmp/bench.json" ] || { echo "FAIL: BENCH_pipeline.json empty"; exit 1; }
# The committed baseline at the repo root must stay well-formed too.
target/release/pipeline --check BENCH_pipeline.json || {
    echo "FAIL: committed BENCH_pipeline.json is not well-formed JSON"; exit 1
}
target/release/pipeline --check "$tmp/bench.json" \
    --baseline BENCH_pipeline.json --margin 150 || {
    echo "FAIL: hot-path bench regressed past the committed baseline + margin"
    echo "(compare $tmp/bench.json against BENCH_pipeline.json; if the"
    echo "slowdown is intentional, regenerate the baseline with"
    echo "'cargo run --release -p daos-bench --bin pipeline')"
    exit 1
}
echo "ok"

echo "== fleet smoke: 256 processes, per-tenant /metrics families =="
# A served fleet run: the sharded engine must complete, print the fleet
# summary, and publish per-tenant label families on /metrics (the
# registry folds tenant.<t>.* counters into daos_tenant_*{tenant="t"}).
target/release/daos fleet --processes 256 --epochs 30 --tenants 4 --seed 42 \
    --serve 127.0.0.1:0 --linger > "$tmp/fleet.log" 2>&1 &
fleet_pid=$!
faddr=""
for _ in $(seq 1 50); do
    faddr=$(sed -n 's/^serving observability on \([0-9.:]*\)$/\1/p' "$tmp/fleet.log")
    [ -n "$faddr" ] && break
    sleep 0.1
done
[ -n "$faddr" ] || { echo "FAIL: fleet run never announced its address"; kill "$fleet_pid" 2>/dev/null; exit 1; }
# Wait for the run to complete (the summary prints before --linger), so
# the scrape below sees the finalized snapshot.
fleet_done=""
for _ in $(seq 1 300); do
    if grep -q "^fleet    256 procs" "$tmp/fleet.log"; then
        fleet_done=1
        break
    fi
    sleep 0.1
done
[ -n "$fleet_done" ] || {
    echo "FAIL: fleet run never printed its summary"
    cat "$tmp/fleet.log"
    kill "$fleet_pid" 2>/dev/null
    exit 1
}
target/release/obs-get "$faddr" /metrics > "$tmp/fleet_metrics.txt" || {
    echo "FAIL: fleet /metrics unreachable or invalid exposition"
    kill "$fleet_pid" 2>/dev/null
    exit 1
}
# The server's own /statusz must answer with its worker-pool state.
target/release/obs-get "$faddr" /statusz > "$tmp/fleet_statusz.txt" || {
    echo "FAIL: fleet /statusz unreachable"
    kill "$fleet_pid" 2>/dev/null
    exit 1
}
grep -q '"in_flight"' "$tmp/fleet_statusz.txt" || {
    echo "FAIL: /statusz lacks the in_flight gauge"
    cat "$tmp/fleet_statusz.txt"
    kill "$fleet_pid" 2>/dev/null
    exit 1
}
# The metric history behind /query must have recorded the fleet gauge on
# every publish: a non-empty, monotonically non-decreasing series.
target/release/obs-get "$faddr" '/query?metric=daos_fleet_nr_processes&agg=last' \
    > "$tmp/fleet_query.json" || {
    echo "FAIL: fleet /query unreachable or unknown metric"
    kill "$fleet_pid" 2>/dev/null
    exit 1
}
tr '[' '\n' < "$tmp/fleet_query.json" \
    | sed -n 's/^[0-9.e+-]*,\([0-9.e+-]*\)\].*$/\1/p' \
    | awk 'NR > 1 && $1 + 0 < prev { exit 1 } { prev = $1 + 0 } END { exit (NR == 0) }' || {
    echo "FAIL: /query daos_fleet_nr_processes series empty or non-monotonic"
    cat "$tmp/fleet_query.json"
    kill "$fleet_pid" 2>/dev/null
    exit 1
}
# The alert engine ships with the default rules installed.
target/release/obs-get "$faddr" /alerts > "$tmp/fleet_alerts.json" || {
    echo "FAIL: fleet /alerts unreachable"
    kill "$fleet_pid" 2>/dev/null
    exit 1
}
grep -q '"rule":"trace_ring_drop_rate"' "$tmp/fleet_alerts.json" || {
    echo "FAIL: /alerts lacks the default rule set"
    cat "$tmp/fleet_alerts.json"
    kill "$fleet_pid" 2>/dev/null
    exit 1
}
kill "$fleet_pid" 2>/dev/null
wait "$fleet_pid" 2>/dev/null || true
grep -q 'daos_tenant_rss_bytes{tenant="t3"}' "$tmp/fleet_metrics.txt" || {
    echo "FAIL: /metrics lacks the per-tenant label families"
    head -40 "$tmp/fleet_metrics.txt"
    exit 1
}
grep -q '^daos_fleet_nr_processes 256$' "$tmp/fleet_metrics.txt" || {
    echo "FAIL: /metrics lacks the fleet-level gauges"
    head -40 "$tmp/fleet_metrics.txt"
    exit 1
}
echo "ok"

echo "== bench fleet: 1k-process tick median within baseline =="
# Same shape as the pipeline gate: fresh full run, artifact well-formed,
# gated median within the committed baseline + margin.
DAOS_BENCH_OUT="$tmp/fleet_bench.json" target/release/fleet_bench > /dev/null
[ -s "$tmp/fleet_bench.json" ] || { echo "FAIL: fleet bench artifact empty"; exit 1; }
target/release/fleet_bench --check BENCH_fleet.json || {
    echo "FAIL: committed BENCH_fleet.json is not well-formed JSON"; exit 1
}
target/release/fleet_bench --check "$tmp/fleet_bench.json" \
    --baseline BENCH_fleet.json --margin 150 || {
    echo "FAIL: fleet tick bench regressed past the committed baseline + margin"
    echo "(compare $tmp/fleet_bench.json against BENCH_fleet.json; if the"
    echo "slowdown is intentional, regenerate the baseline with"
    echo "'cargo run --release -p daos-bench --bin fleet_bench')"
    exit 1
}
echo "ok"

echo "== bench obs: load-test p50s within baseline, counts equality-pinned =="
# The obs server under a 200-client keep-alive storm per endpoint.
# obs_bench refuses to write an artifact unless the server's own
# daos_obs_http_requests_total{endpoint=...} exactly matches the
# client-side request counts, so this step also proves the server's
# self-telemetry under load. The gate compares per-endpoint p50s.
DAOS_BENCH_OUT="$tmp/obs_bench.json" target/release/obs_bench > /dev/null
[ -s "$tmp/obs_bench.json" ] || { echo "FAIL: obs bench artifact empty"; exit 1; }
target/release/obs_bench --check BENCH_obs.json || {
    echo "FAIL: committed BENCH_obs.json is not well-formed JSON"; exit 1
}
target/release/obs_bench --check "$tmp/obs_bench.json" \
    --baseline BENCH_obs.json --margin 150 || {
    echo "FAIL: obs endpoint latency regressed past the committed baseline + margin"
    echo "(compare $tmp/obs_bench.json against BENCH_obs.json; if the"
    echo "slowdown is intentional, regenerate the baseline with"
    echo "'cargo run --release -p daos-bench --bin obs_bench')"
    exit 1
}
echo "ok"

echo "== offline test suite (workspace) =="
cargo test -q --offline --workspace

echo "== offline bench binaries compile =="
cargo bench --offline --no-run

echo "== telemetry: JSONL replay re-derives the Fig. 7 bound =="
cargo test -q --offline --test trace_replay

echo "verify: OK"
