//! # daos-repro — reproduction of "DAOS: Data Access-aware Operating System" (HPDC '22)
//!
//! This umbrella crate re-exports the whole reproduction stack:
//!
//! * [`mm`] — the simulated kernel memory-management substrate;
//! * [`monitor`] — the Data Access Monitor (DAMON);
//! * [`schemes`] — the Memory Management Schemes Engine (DAMOS);
//! * [`tuner`] — the Auto-tuning Runtime;
//! * [`workloads`] — the 24 Parsec3/Splash-2x analogs + serverless fleet;
//! * [`daos`] — the integration layer (configs, runner, heatmaps, metrics).
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ```
//! use daos_repro::prelude::*;
//!
//! // Run freqmine under the paper's 1-line proactive-reclamation scheme
//! // (shortened run + 1 s idle threshold to keep the doc test fast).
//! let machine = MachineProfile::i3_metal();
//! let spec = by_path("parsec3/freqmine").unwrap();
//! let mut quick = spec; quick.nr_epochs = 3_000;
//! let base = run(&machine, &RunConfig::baseline(), &quick, 42).unwrap();
//! let prcl_cfg = RunConfig::prcl_with_min_age(daos_mm::clock::sec(1));
//! let prcl = run(&machine, &prcl_cfg, &quick, 42).unwrap();
//! let n = Normalized::of(&base, &prcl);
//! assert!(n.memory_saving_pct() > 40.0);
//! assert!(n.slowdown_pct() < 10.0);
//! ```

pub use daos;
pub use daos_mm as mm;
pub use daos_trace as trace;
pub use daos_monitor as monitor;
pub use daos_schemes as schemes;
pub use daos_tuner as tuner;
pub use daos_workloads as workloads;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use daos::{
        biggest_active_span, run, score_vs_baseline, DaosError, Heatmap, MonitorKind,
        Normalized, RunConfig, RunResult,
    };
    pub use daos_trace::{Collector, Event, Registry, TimedEvent};
    pub use daos_mm::{
        AccessBatch, AddrRange, MachineProfile, MemorySystem, SwapConfig, ThpMode,
    };
    pub use daos_monitor::{
        MonitorAttrs, MonitorCtx, PaddrPrimitives, SyntheticPrimitives, SyntheticSpace,
        VaddrPrimitives,
    };
    pub use daos_schemes::{
        parse_scheme_line, parse_schemes, Action, Scheme, SchemeConfig, SchemeTarget,
        SchemesEngine,
    };
    pub use daos_tuner::{tune, classify, DefaultScore, ScoreFn, ScoreInputs, TunerConfig};
    pub use daos_workloads::{
        by_path, instantiate, paper_suite, FleetConfig, ServerlessFleet, Workload,
        WorkloadSpec,
    };
}
